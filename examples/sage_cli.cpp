/**
 * @file
 * sage_cli: a command-line front end over the library — the shape of
 * tool a downstream genomics user would actually invoke.
 *
 *   sage_cli compress   <in.fastq> <reference.txt> <out.sage> [--drop-quality] [--keep-order]
 *   sage_cli decompress <in.sage> <out.fastq> [--threads N]
 *   sage_cli range      <in.sage> <out.fastq> <first-chunk> <count> [--threads N]
 *   sage_cli inspect    <in.sage>
 *   sage_cli demo       <workdir>      (generates inputs, runs all of the above)
 *
 * The reference file is plain text of A/C/G/T (one consensus sequence).
 * Built on the streaming session API (io/session.hh): compression
 * streams the archive to disk through a FileSink; decompression,
 * range extraction and inspection open the archive through a
 * FileSource, so `inspect` and `range` never load the whole file.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/sage.hh"
#include "genomics/fastq.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

using namespace sage;

/** Load a consensus/reference file, dropping all whitespace. I/O
 *  failures are fatal with the offending path (FileSource). */
std::string
readReferenceFile(const std::string &path)
{
    const FileSource source(path);
    const std::vector<uint8_t> text = source.readAll();
    std::string clean;
    clean.reserve(text.size());
    for (uint8_t c : text) {
        if (!std::isspace(static_cast<int>(c)))
            clean.push_back(static_cast<char>(c));
    }
    return clean;
}

/** Parse a trailing  --threads N  option (0 = hardware concurrency). */
bool
parseThreads(int argc, char **argv, int from, unsigned &threads)
{
    threads = 0;
    for (int i = from; i < argc; i++) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            const int n = std::atoi(argv[++i]);
            if (n < 0 || n > 1024) {
                std::fprintf(stderr, "--threads must be in [0, 1024]\n");
                return false;
            }
            threads = static_cast<unsigned>(n);
        }
    }
    return true;
}

int
cmdCompress(int argc, char **argv)
{
    if (argc < 5) {
        std::fprintf(stderr, "usage: sage_cli compress <in.fastq> "
                             "<reference.txt> <out.sage> "
                             "[--drop-quality] [--keep-order]\n");
        return 1;
    }
    SageConfig config;
    for (int i = 5; i < argc; i++) {
        if (std::strcmp(argv[i], "--drop-quality") == 0)
            config.keepQuality = false;
        else if (std::strcmp(argv[i], "--keep-order") == 0)
            config.preserveOrder = true;
    }
    ReadSet rs = readFastqFile(argv[2]);
    const std::string reference = readReferenceFile(argv[3]);
    const uint64_t fastq_bytes = rs.fastqBytes();
    const uint64_t dna_bytes = rs.dnaBytes();
    const uint64_t quality_bytes = rs.qualityBytes();

    SageWriter writer(argv[4], config);
    writer.add(std::move(rs)); // No second resident copy of the reads.
    const SageWriteStats stats = writer.finish(reference);
    std::printf("%s: %llu B -> %llu B (%.2fx); DNA %.2fx, quality %s\n",
                argv[4],
                static_cast<unsigned long long>(fastq_bytes),
                static_cast<unsigned long long>(stats.archiveBytes),
                static_cast<double>(fastq_bytes)
                    / static_cast<double>(stats.archiveBytes),
                static_cast<double>(dna_bytes) / stats.dnaBytes,
                stats.qualityBytes == 0
                    ? "dropped"
                    : TextTable::num(
                          static_cast<double>(quality_bytes)
                          / stats.qualityBytes).c_str());
    return 0;
}

int
cmdDecompress(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: sage_cli decompress <in.sage> <out.fastq> "
                     "[--threads N]\n");
        return 1;
    }
    unsigned threads = 0;
    if (!parseThreads(argc, argv, 4, threads))
        return 1;
    ThreadPool pool(threads);
    SageReader reader(argv[2]);
    const ReadSet rs = reader.decodeAll(&pool);
    writeFastqFile(rs, argv[3]);
    std::printf("%s: %zu reads restored (%zu chunks, %zu threads)\n",
                argv[3], rs.reads.size(), reader.chunkCount(),
                pool.threadCount());
    return 0;
}

int
cmdRange(int argc, char **argv)
{
    if (argc < 6) {
        std::fprintf(stderr,
                     "usage: sage_cli range <in.sage> <out.fastq> "
                     "<first-chunk> <count> [--threads N]\n");
        return 1;
    }
    unsigned threads = 0;
    if (!parseThreads(argc, argv, 6, threads))
        return 1;
    const size_t first = static_cast<size_t>(std::atoll(argv[4]));
    const size_t count = static_cast<size_t>(std::atoll(argv[5]));

    SageReader reader(argv[2]);
    if (first > reader.chunkCount() ||
        count > reader.chunkCount() - first) {
        std::fprintf(stderr, "chunk range [%zu, %zu) exceeds the "
                             "archive's %zu chunks\n",
                     first, first + count, reader.chunkCount());
        return 1;
    }
    ThreadPool pool(threads);
    const ReadSet rs = reader.decodeRange(first, count, &pool);
    writeFastqFile(rs, argv[3]);
    std::printf("%s: %zu reads from chunks [%zu, %zu) of %zu "
                "(stored order)\n",
                argv[3], rs.reads.size(), first, first + count,
                reader.chunkCount());
    return 0;
}

int
cmdInspect(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: sage_cli inspect <in.sage>\n");
        return 1;
    }
    SageReaderOptions options;
    options.dnaOnly = true; // Header-only open: no payload decode.
    SageReader reader(argv[2], options);
    const ArchiveInfo &info = reader.info();
    std::printf("SAGe archive %s\n", argv[2]);
    std::printf("  reads:            %llu\n",
                static_cast<unsigned long long>(info.params.numReads));
    std::printf("  chunks:           %zu\n", reader.chunkCount());
    std::printf("  consensus length: %llu\n",
                static_cast<unsigned long long>(
                    info.params.consensusLength));
    std::printf("  quality stream:   %s\n",
                info.params.hasQuality ? "yes" : "no");
    std::printf("  order preserved:  %s\n",
                info.params.preservedOrder ? "yes" : "no");
    std::printf("  modal read len:   %llu%s\n",
                static_cast<unsigned long long>(
                    info.params.modalReadLength),
                info.params.constantReadLength ? " (constant)" : "");
    std::printf("  optimizations:    reorder=%d tuned=%d segments=%u "
                "infer-types=%d corner-trick=%d\n",
                info.params.reorderReads, info.params.tuneArrays,
                info.params.maxSegments, info.params.inferTypes,
                info.params.cornerTrick);
    std::printf("  matching-pos widths (bits):");
    for (uint8_t width : info.params.matchPos.widthByRank)
        std::printf(" %u", width);
    std::printf("\n  mismatch-pos widths (bits):");
    for (uint8_t width : info.params.mismatchPos.widthByRank)
        std::printf(" %u", width);
    std::printf("\n  streams:\n");
    for (const auto &[name, size] : info.streamSizes) {
        std::printf("    %-10s %10llu B\n", name.c_str(),
                    static_cast<unsigned long long>(size));
    }
    return 0;
}

int
cmdDemo(int argc, char **argv)
{
    const std::string dir = argc > 2 ? argv[2] : "/tmp";
    const std::string fastq = dir + "/cli_demo.fastq";
    const std::string ref = dir + "/cli_demo.ref.txt";
    const std::string archive = dir + "/cli_demo.sage";
    const std::string restored = dir + "/cli_demo.out.fastq";
    const std::string ranged = dir + "/cli_demo.range.fastq";

    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    writeFastqFile(ds.readSet, fastq);
    {
        std::ofstream out(ref);
        out << ds.reference;
    }
    std::printf("generated %s and %s\n", fastq.c_str(), ref.c_str());

    char prog[] = "sage_cli";
    char c0[] = "compress";
    std::vector<char *> cargs = {prog, c0,
                                 const_cast<char *>(fastq.c_str()),
                                 const_cast<char *>(ref.c_str()),
                                 const_cast<char *>(archive.c_str())};
    cmdCompress(static_cast<int>(cargs.size()), cargs.data());

    char c1[] = "inspect";
    std::vector<char *> iargs = {prog, c1,
                                 const_cast<char *>(archive.c_str())};
    cmdInspect(static_cast<int>(iargs.size()), iargs.data());

    char c2[] = "range";
    char first[] = "0";
    char count[] = "1";
    std::vector<char *> rargs = {prog, c2,
                                 const_cast<char *>(archive.c_str()),
                                 const_cast<char *>(ranged.c_str()),
                                 first, count};
    cmdRange(static_cast<int>(rargs.size()), rargs.data());

    char c3[] = "decompress";
    std::vector<char *> dargs = {prog, c3,
                                 const_cast<char *>(archive.c_str()),
                                 const_cast<char *>(restored.c_str())};
    return cmdDecompress(static_cast<int>(dargs.size()), dargs.data());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: sage_cli "
                     "<compress|decompress|range|inspect|demo> ...\n");
        return 1;
    }
    if (std::strcmp(argv[1], "compress") == 0)
        return cmdCompress(argc, argv);
    if (std::strcmp(argv[1], "decompress") == 0)
        return cmdDecompress(argc, argv);
    if (std::strcmp(argv[1], "range") == 0)
        return cmdRange(argc, argv);
    if (std::strcmp(argv[1], "inspect") == 0)
        return cmdInspect(argc, argv);
    if (std::strcmp(argv[1], "demo") == 0)
        return cmdDemo(argc, argv);
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return 1;
}
