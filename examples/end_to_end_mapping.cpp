/**
 * @file
 * End-to-end read-mapping scenario: a read set is stored compressed on
 * an SSD, prepared (decompressed + formatted) with different tools,
 * and mapped with a GEM-class accelerator. Mirrors the workload the
 * paper's intro motivates (Fig. 1) on one dataset, with real codec
 * runs feeding the pipeline model.
 *
 * Run:  ./examples/end_to_end_mapping
 */

#include <cstdio>

#include "accel/mappers.hh"
#include "pipeline/measure.hh"
#include "pipeline/pipeline.hh"
#include "util/table.hh"

int
main()
{
    using namespace sage;

    std::printf("synthesizing and measuring RS1-like workload...\n");
    const MeasuredArtifacts art = measurePreset(makeRs1Spec());
    const WorkloadMeasurement &work = art.work;
    std::printf("  %llu reads, FASTQ %.1f MB; compressed: pigz %.2f MB,"
                " (N)Spr %.2f MB, SAGe %.2f MB\n\n",
                static_cast<unsigned long long>(work.totalReads),
                work.fastqBytes / 1e6, work.pigzBytes / 1e6,
                work.springBytes / 1e6, work.sageBytes / 1e6);

    SystemConfig system;
    system.mapper = gemAccelerator();

    TextTable table;
    table.setHeader({"preparation", "end-to-end", "prep", "I/O", "map",
                     "KReads/s", "energy [J]"});
    for (PrepConfig config :
         {PrepConfig::Pigz, PrepConfig::NSpr, PrepConfig::NSprAC,
          PrepConfig::SageSW, PrepConfig::SageHW,
          PrepConfig::ZeroTimeDec}) {
        const EndToEndResult result =
            evaluateEndToEnd(work, config, system);
        table.addRow({prepConfigName(config),
                      TextTable::num(result.seconds, 4) + " s",
                      TextTable::num(result.prepSeconds, 4) + " s",
                      TextTable::num(result.ioSeconds, 4) + " s",
                      TextTable::num(result.mapSeconds, 4) + " s",
                      TextTable::num(
                          result.readsPerSec(work.totalReads) / 1e3, 0),
                      TextTable::num(result.energy.total(), 2)});
    }
    table.print();

    std::printf("\nthe takeaway the paper leads with: once mapping is "
                "accelerated,\npreparation throughput decides the "
                "pipeline -- SAGe restores the\naccelerator's benefit "
                "and matches the zero-time-decompression ideal.\n");
    return 0;
}
