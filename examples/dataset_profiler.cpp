/**
 * @file
 * Dataset profiler: maps a read set against its reference and reports
 * the statistical properties SAGe's encodings exploit (paper §5.1,
 * Properties 1-6) — the analysis a practitioner would run to decide
 * how well a new dataset will compress.
 *
 * Run:  ./examples/dataset_profiler [short|long]
 */

#include <cstdio>
#include <cstring>

#include "consensus/stats.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

int
main(int argc, char **argv)
{
    using namespace sage;

    const bool long_reads = argc > 1 && std::strcmp(argv[1], "long") == 0;
    const DatasetSpec spec =
        long_reads ? makeRs4Spec() : makeRs2Spec();
    std::printf("profiling %s (%s reads)...\n", spec.name.c_str(),
                long_reads ? "long" : "short");

    const SimulatedDataset ds = synthesizeDataset(spec);
    ThreadPool pool;
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet, &pool);
    const MappingStats map_stats =
        ConsensusMapper::summarize(mappings, ds.readSet);
    const PropertyStats props = analyzeProperties(mappings);

    std::printf("\nmapping summary\n");
    std::printf("  reads:        %llu\n",
                static_cast<unsigned long long>(map_stats.totalReads));
    std::printf("  mapped:       %llu (%.1f%%)\n",
                static_cast<unsigned long long>(map_stats.mappedReads),
                100.0 * map_stats.mappedReads / map_stats.totalReads);
    std::printf("  reverse:      %llu\n",
                static_cast<unsigned long long>(map_stats.reverseReads));
    std::printf("  chimeric:     %llu (Property 4)\n",
                static_cast<unsigned long long>(
                    map_stats.chimericReads));
    std::printf("  edit events:  %llu over %llu aligned bases "
                "(%.3f%%)\n",
                static_cast<unsigned long long>(map_stats.totalEdits),
                static_cast<unsigned long long>(
                    map_stats.totalAlignedBases),
                100.0 * map_stats.totalEdits
                    / std::max<uint64_t>(map_stats.totalAlignedBases,
                                         1));

    std::printf("\nmismatch-position delta bits (Property 1)\n");
    TextTable pos_table;
    pos_table.setHeader({"#bits", "fraction"});
    for (size_t b = 1; b <= 12 &&
                       b < props.mismatchPosDeltaBits.size(); b++) {
        pos_table.addRow({std::to_string(b),
                          TextTable::percent(
                              props.mismatchPosDeltaBits.fraction(b))});
    }
    pos_table.print();

    std::printf("\nmismatch counts per read (Property 2)\n");
    TextTable count_table;
    count_table.setHeader({"#events", "fraction"});
    for (size_t c = 0; c <= 6; c++) {
        count_table.addRow({std::to_string(c),
                            TextTable::percent(
                                props.mismatchCountPerRead.fraction(c))});
    }
    count_table.print();

    std::printf("\nsubstitution share of events: %s (Property 5)\n",
                TextTable::percent(props.substitutionFraction).c_str());
    if (props.indelBlockLength.total() > 0) {
        std::printf("indel blocks of length 1: %s of blocks, "
                    "%s of indel bases (Property 3)\n",
                    TextTable::percent(
                        props.indelBlockLength.fraction(1)).c_str(),
                    TextTable::percent(
                        static_cast<double>(
                            props.indelBasesByLength.count(1))
                        / std::max<uint64_t>(
                              props.indelBasesByLength.total(), 1))
                        .c_str());
    }
    std::printf("matching-position deltas needing <= 6 bits: %s "
                "(Property 6)\n",
                TextTable::percent(
                    static_cast<double>(
                        props.matchingPosDeltaBits.cumulative(6))
                    / std::max<uint64_t>(
                          props.matchingPosDeltaBits.total(), 1))
                    .c_str());
    return 0;
}
