/**
 * @file
 * Quickstart: compress a read set with SAGe, decompress it, verify
 * losslessness, and print the ratios — the five-minute tour of the
 * public API.
 *
 *   sage::synthesizeDataset  -> a reproducible synthetic read set
 *   sage::sageCompress       -> SAGe archive (arrays + guide arrays)
 *   sage::sageDecompress     -> reads back, bit-exact
 */

#include <cstdio>
#include <set>

#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"

int
main()
{
    using namespace sage;

    // 1. Get a read set. Real users would call readFastqFile(path);
    //    here we synthesize a small Illumina-like sample plus the
    //    reference it was sequenced from.
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    std::printf("read set: %zu reads, %llu bases, %llu B as FASTQ\n",
                ds.readSet.reads.size(),
                static_cast<unsigned long long>(ds.readSet.totalBases()),
                static_cast<unsigned long long>(ds.readSet.fastqBytes()));

    // 2. Compress. The consensus (here: the reference) is stored inside
    //    the archive, so the output is self-contained.
    SageConfig config;            // All paper optimizations (O4).
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    std::printf("SAGe archive: %zu B  (DNA streams %llu B, quality "
                "%llu B)\n",
                archive.bytes.size(),
                static_cast<unsigned long long>(archive.dnaBytes),
                static_cast<unsigned long long>(archive.qualityBytes));
    std::printf("DNA compression ratio: %.1fx   quality: %.1fx\n",
                static_cast<double>(ds.readSet.dnaBytes())
                    / archive.dnaBytes,
                static_cast<double>(ds.readSet.qualityBytes())
                    / archive.qualityBytes);

    // 3. Decompress and verify losslessness (reads come back in
    //    matching-position order; use preserveOrder for byte-identical
    //    FASTQ).
    const ReadSet back = sageDecompress(archive.bytes);
    std::multiset<std::string> before, after;
    for (const auto &read : ds.readSet.reads)
        before.insert(read.bases + "\n" + read.quals);
    for (const auto &read : back.reads)
        after.insert(read.bases + "\n" + read.quals);
    if (before != after) {
        std::printf("ERROR: round trip was not lossless!\n");
        return 1;
    }
    std::printf("round trip: lossless (%zu reads verified)\n",
                back.reads.size());

    // 4. Streaming access: analysis systems consume reads one at a
    //    time in the accelerator-friendly 2-bit format (SAGe_Read).
    SageDecoder decoder(archive.bytes);
    size_t packed_bytes = 0;
    const auto packed = decoder.decodeAllPacked(OutputFormat::TwoBit);
    for (const auto &read : packed)
        packed_bytes += read.size();
    std::printf("2-bit formatted output: %zu B across %zu reads\n",
                packed_bytes, packed.size());
    return 0;
}
