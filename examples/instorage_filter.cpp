/**
 * @file
 * In-storage scenario (paper Fig. 12 mode 3): SAGe hardware inside the
 * SSD controller feeds a GenStore-class in-storage filter, so exactly
 * matching reads never leave the device. Demonstrates the SAGe_Write /
 * SAGe_Read interface commands and the resource-constrained
 * integration the paper argues only SAGe is light enough for.
 *
 * Run:  ./examples/instorage_filter
 */

#include <cstdio>

#include "accel/genstore.hh"
#include "accel/mappers.hh"
#include "core/sage.hh"
#include "pipeline/measure.hh"
#include "simgen/synthesize.hh"
#include "ssd/sage_device.hh"
#include "util/table.hh"

int
main()
{
    using namespace sage;

    // A clean short-read set: the favourable case for exact-match
    // filtering.
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0;
    const SimulatedDataset ds = synthesizeDataset(spec);

    // Compress and store via SAGe_Write on an in-storage-mode device.
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    SageDevice device(SsdModel::pciePerformance(),
                      SageIntegration::InStorage);
    device.sageWrite("sample.sage", archive);
    std::printf("stored %zu B compressed (layout aligned: %s)\n",
                archive.bytes.size(),
                device.ftl().genomicLayoutAligned() ? "yes" : "no");

    // SAGe_Read streams reads in 2-bit format to the in-SSD filter.
    const SageReadResult read_result =
        device.sageRead("sample.sage", OutputFormat::TwoBit);
    std::printf("SAGe_Read: %llu B compressed -> %llu B prepared "
                "(NAND %.2f ms)\n",
                static_cast<unsigned long long>(
                    read_result.compressedBytes),
                static_cast<unsigned long long>(
                    read_result.deliveredBytes),
                read_result.nandSeconds * 1e3);

    // GenStore-class exact-match filtering against the reference.
    InStorageFilter isf(ds.reference);
    const IsfResult filtered = isf.filter(ds.readSet);
    std::printf("ISF: %llu/%llu reads filtered in-SSD (%.1f%%), "
                "%llu bases still need mapping\n",
                static_cast<unsigned long long>(filtered.filteredReads),
                static_cast<unsigned long long>(filtered.totalReads),
                filtered.filterFraction() * 100.0,
                static_cast<unsigned long long>(
                    filtered.remainingBases()));

    // End-to-end comparison: SAGeSSD+ISF vs host-side SAGe vs (N)Spr.
    std::printf("\nmeasuring codecs for the pipeline comparison...\n");
    const MeasuredArtifacts art = measureWorkload(ds);
    SystemConfig host_system;
    host_system.mapper = gemAccelerator();
    SystemConfig isf_system = host_system;
    isf_system.useIsf = true;

    TextTable table;
    table.setHeader({"configuration", "end-to-end", "prep", "ISF",
                     "map", "energy [J]"});
    auto row = [&](const char *name, PrepConfig config,
                   const SystemConfig &system) {
        const EndToEndResult r =
            evaluateEndToEnd(art.work, config, system);
        table.addRow({name, TextTable::num(r.seconds, 5) + " s",
                      TextTable::num(r.prepSeconds, 5) + " s",
                      TextTable::num(r.isfSeconds, 5) + " s",
                      TextTable::num(r.mapSeconds, 5) + " s",
                      TextTable::num(r.energy.total(), 2)});
    };
    row("(N)Spr + GEM", PrepConfig::NSpr, host_system);
    row("SAGe (host) + GEM", PrepConfig::SageHW, host_system);
    row("SAGeSSD + ISF + GEM", PrepConfig::SageSSD, isf_system);
    table.print();
    return 0;
}
