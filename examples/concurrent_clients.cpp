/**
 * @file
 * Concurrent clients over one shared archive: the SageArchiveService
 * tour (service/service.hh). One service owns the open archive and a
 * byte-budgeted decoded-chunk cache; any number of clients read
 * through it — sequential sessions, random ranges, async futures —
 * and a hot chunk is decoded once no matter how many of them ask.
 *
 *   sage::SageArchiveService  -> shared server over one archive
 *   service.openSession()     -> per-client sequential cursor
 *   service.readRange(a, n)   -> stored-order span, any priority
 *   service.readRangeAsync()  -> future-based flavor
 *   RequestOptions            -> deadline + cancel token (qos.hh)
 *   service.stats()           -> hit rate, latency, queue counters
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "core/sage.hh"
#include "simgen/synthesize.hh"

int
main()
{
    using namespace sage;

    // 1. Make an archive to serve (real deployments point the service
    //    at an existing .sage file or device array).
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 128;  // Small chunks: visible cache traffic.
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    const std::string path = "/tmp/sage_concurrent_clients.sage";
    {
        FileSink sink(path);
        sink.writeBytes(archive.bytes);
    }

    // 2. Open it once, behind a service. The cache budget bounds the
    //    decoded working set; requests are scheduled onto a shared
    //    worker pool with FIFO-within-priority ordering.
    ServiceOptions options;
    options.cacheBudgetBytes = 8ull << 20;
    SageArchiveService service(path, options);
    std::printf("serving %llu reads in %zu chunks\n",
                static_cast<unsigned long long>(service.readCount()),
                service.chunkCount());

    // 3. Point clients at it concurrently. Each kind of consumer in
    //    its own thread; they share decoded chunks through the cache.
    std::vector<std::thread> clients;

    // A sequential scanner (e.g. a mapper feeding itself).
    clients.emplace_back([&] {
        ServiceSession session = service.openSession();
        uint64_t bases = 0;
        while (session.hasNext())
            bases += session.next().bases.size();
        std::printf("  scanner: walked %llu bases\n",
                    static_cast<unsigned long long>(bases));
    });

    // A range reader (e.g. a region query) at Interactive priority.
    clients.emplace_back([&] {
        const std::vector<Read> span =
            service.readRange(100, 200, RequestPriority::Interactive);
        std::printf("  range client: reads [100, 300) -> %zu reads\n",
                    span.size());
    });

    // An async consumer overlapping two requests.
    clients.emplace_back([&] {
        auto a = service.readRangeAsync(0, 256);
        auto b = service.readChunkAsync(service.chunkCount() - 1);
        std::printf("  async client: %zu + %zu reads\n",
                    a.get().size(), b.get().size());
    });

    // A latency-sensitive client: deadline + cancel token. The QoS
    // overloads return ReadResult{status, reads} — check ok() before
    // touching the data; an Expired/Cancelled request delivers none.
    clients.emplace_back([&] {
        CancelSource source;  // cancel() from any thread to abort.
        RequestOptions qos;
        qos.priority = RequestPriority::Interactive;
        qos.deadline = RequestOptions::deadlineIn(0.100);
        qos.cancel = source.token();
        const ReadResult result = service.readRange(0, 200, qos);
        std::printf("  qos client: %s, %zu reads\n",
                    requestStatusName(result.status),
                    result.reads.size());
    });

    for (auto &client : clients)
        client.join();

    // 4. The service kept score.
    const ServiceStats stats = service.stats();
    std::printf("stats: %llu requests (%llu expired, %llu cancelled), "
                "%.0f%% cache hit rate, %llu decodes, "
                "interactive p99 %.2f ms\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.cancelled),
                100.0 * stats.cache.hitRate(),
                static_cast<unsigned long long>(stats.cache.misses),
                stats.latencyByPriority[static_cast<size_t>(
                    RequestPriority::Interactive)].p99Seconds * 1e3);
    std::remove(path.c_str());
    return 0;
}
