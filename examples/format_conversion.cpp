/**
 * @file
 * File-based format conversion: FASTQ on disk -> SAGe archive on disk
 * -> FASTQ again, exercising real file I/O and the preserve-order mode
 * (byte-identical record restoration). This is the CLI-style workflow
 * a downstream user would wrap in their tooling.
 *
 * Run:  ./examples/format_conversion [workdir]
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "core/sage.hh"
#include "genomics/fastq.hh"
#include "simgen/synthesize.hh"

namespace {

void
writeFile(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sage;

    const std::string dir = argc > 1 ? argv[1] : "/tmp";
    const std::string fastq_path = dir + "/sage_example.fastq";
    const std::string archive_path = dir + "/sage_example.sage";
    const std::string restored_path = dir + "/sage_example.restored.fastq";

    // Produce an input FASTQ file (a real workflow starts here).
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    writeFastqFile(ds.readSet, fastq_path);
    std::printf("wrote %s (%llu B)\n", fastq_path.c_str(),
                static_cast<unsigned long long>(
                    ds.readSet.fastqBytes()));

    // FASTQ -> SAGe archive (preserve original record order so the
    // restored file is byte-identical).
    const ReadSet input = readFastqFile(fastq_path);
    SageConfig config;
    config.preserveOrder = true;
    const SageArchive archive =
        sageCompress(input, ds.reference, config);
    writeFile(archive_path, archive.bytes);
    std::printf("wrote %s (%zu B, %.1fx smaller)\n",
                archive_path.c_str(), archive.bytes.size(),
                static_cast<double>(input.fastqBytes())
                    / archive.bytes.size());

    // SAGe archive -> FASTQ.
    const std::vector<uint8_t> loaded = readFile(archive_path);
    const ReadSet restored = sageDecompress(loaded);
    writeFastqFile(restored, restored_path);
    std::printf("wrote %s\n", restored_path.c_str());

    // Verify byte-identity.
    std::ifstream a(fastq_path, std::ios::binary);
    std::ifstream b(restored_path, std::ios::binary);
    const std::string sa((std::istreambuf_iterator<char>(a)),
                         std::istreambuf_iterator<char>());
    const std::string sb((std::istreambuf_iterator<char>(b)),
                         std::istreambuf_iterator<char>());
    if (sa != sb) {
        std::printf("ERROR: restored FASTQ differs from the input!\n");
        return 1;
    }
    std::printf("restored FASTQ is byte-identical to the input "
                "(%zu B)\n", sa.size());
    return 0;
}
