/**
 * @file
 * File-based format conversion: FASTQ on disk -> SAGe archive on disk
 * -> FASTQ again, exercising the streaming session API and the
 * preserve-order mode (byte-identical record restoration). This is the
 * CLI-style workflow a downstream user would wrap in their tooling.
 *
 * The archive is written through SageWriter (streamed to a FileSink,
 * never materialized as one buffer) and read back through SageReader
 * (header + chunk table up front, per-chunk slices on demand) — the
 * whole-archive round trip plus a chunk-range random access that only
 * touches part of the file.
 *
 * Run:  ./examples/format_conversion [workdir]
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "core/sage.hh"
#include "genomics/fastq.hh"
#include "simgen/synthesize.hh"

int
main(int argc, char **argv)
{
    using namespace sage;

    const std::string dir = argc > 1 ? argv[1] : "/tmp";
    const std::string fastq_path = dir + "/sage_example.fastq";
    const std::string archive_path = dir + "/sage_example.sage";
    const std::string restored_path = dir + "/sage_example.restored.fastq";

    // Produce an input FASTQ file (a real workflow starts here).
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    writeFastqFile(ds.readSet, fastq_path);
    std::printf("wrote %s (%llu B)\n", fastq_path.c_str(),
                static_cast<unsigned long long>(
                    ds.readSet.fastqBytes()));

    // FASTQ -> SAGe archive (preserve original record order so the
    // restored file is byte-identical), streamed straight to disk.
    const ReadSet input = readFastqFile(fastq_path);
    SageConfig config;
    config.preserveOrder = true;
    SageWriter writer(archive_path, config);
    writer.add(input);
    const SageWriteStats stats = writer.finish(ds.reference);
    std::printf("wrote %s (%llu B, %.1fx smaller)\n",
                archive_path.c_str(),
                static_cast<unsigned long long>(stats.archiveBytes),
                static_cast<double>(input.fastqBytes())
                    / static_cast<double>(stats.archiveBytes));

    // SAGe archive -> FASTQ, through a file-backed read session.
    SageReader reader(archive_path);
    const ReadSet restored = reader.decodeAll();
    writeFastqFile(restored, restored_path);
    std::printf("wrote %s\n", restored_path.c_str());

    // Chunk-range random access: decode just the first chunk without
    // loading the rest of the archive.
    {
        SageReader ranged(archive_path);
        const ReadSet part = ranged.decodeRange(0, 1);
        std::printf("random access: chunk 0 alone holds %zu of %llu "
                    "reads\n",
                    part.reads.size(),
                    static_cast<unsigned long long>(
                        ranged.readCount()));
    }

    // Verify byte-identity.
    std::ifstream a(fastq_path, std::ios::binary);
    std::ifstream b(restored_path, std::ios::binary);
    const std::string sa((std::istreambuf_iterator<char>(a)),
                         std::istreambuf_iterator<char>());
    const std::string sb((std::istreambuf_iterator<char>(b)),
                         std::istreambuf_iterator<char>());
    if (sa != sb) {
        std::printf("ERROR: restored FASTQ differs from the input!\n");
        return 1;
    }
    std::printf("restored FASTQ is byte-identical to the input "
                "(%zu B)\n", sa.size());
    return 0;
}
