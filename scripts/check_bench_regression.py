#!/usr/bin/env python3
"""Bench-regression gate for the serving layers.

Compares a freshly generated bench report against its committed
baseline and fails the build on a regression. The report kind is read
from the "bench" field.

bench_service reports (BENCH_service.json):

  * any matching (clients, cacheBudgetBytes) sweep row whose
    aggMbPerSec dropped more than --tolerance (default 30%);
  * the contended-cache acceptance row: the 64-client 4 MiB run must
    not be slower than the 64-client cache-off run by more than 10%
    (the scan-resistant cache must never be worse than no cache);
  * the mixed QoS scenario: interactive p99 must stay below batch p50,
    and batch throughput must stay within 10% of the streamers-only
    pass (when both reports carry a "mixed" block).

bench_net reports (BENCH_net.json):

  * any matching connection-sweep row whose aggMbPerSec dropped more
    than --tolerance;
  * the overload scenario: every walk must complete (sheds surface as
    retryable Overloaded replies, never dropped work) — and when the
    pool is saturated enough to shed at all, the count stays sane.

Bench numbers only transfer between like machines, so the gate first
compares the embedded host blocks (hardwareConcurrency, compiler,
kernelDispatch, forcedScalar). On mismatch it prints a notice and
exits 0 — a laptop run must not fail CI against a runner baseline,
and vice versa. Refresh the baseline by committing the fresh report
(see docs/perf.md).

Usage:
    check_bench_regression.py FRESH BASELINE [--tolerance 0.30]
Exit codes: 0 ok / host mismatch, 1 regression, 2 bad input.
"""

import argparse
import json
import sys

HOST_KEYS = ("hardwareConcurrency", "compiler", "kernelDispatch",
             "forcedScalar")
ACCEPT_CLIENTS = 64
ACCEPT_BUDGET = 4 * 1024 * 1024
CACHE_OFF_SLACK = 0.10  # Noise allowance for the cache-off comparison.
MIXED_BATCH_SLACK = 0.10


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def hosts_comparable(fresh, baseline):
    mismatches = []
    fresh_host = fresh.get("host", {})
    base_host = baseline.get("host", {})
    for key in HOST_KEYS:
        if fresh_host.get(key) != base_host.get(key):
            mismatches.append(
                f"  {key}: fresh={fresh_host.get(key)!r} "
                f"baseline={base_host.get(key)!r}")
    return mismatches


def sweep_index(report):
    return {(row["clients"], row["cacheBudgetBytes"]): row
            for row in report.get("clientSweep", [])}


def check_net(fresh, baseline, tolerance):
    """Gate a bench_net report; returns a list of failure strings."""
    failures = []
    fresh_rows = {row["connections"]: row
                  for row in fresh.get("connectionSweep", [])}
    base_rows = {row["connections"]: row
                 for row in baseline.get("connectionSweep", [])}

    for connections, base_row in sorted(base_rows.items()):
        fresh_row = fresh_rows.get(connections)
        if fresh_row is None:
            failures.append(
                f"connection sweep row connections={connections}: "
                f"missing from fresh report")
            continue
        base_agg = base_row["aggMbPerSec"]
        fresh_agg = fresh_row["aggMbPerSec"]
        if base_agg > 0 and fresh_agg < base_agg * (1 - tolerance):
            failures.append(
                f"connection sweep row connections={connections}: "
                f"aggMbPerSec {fresh_agg:.1f} is "
                f"{100 * (1 - fresh_agg / base_agg):.1f}% below "
                f"baseline {base_agg:.1f} "
                f"(tolerance {100 * tolerance:.0f}%)")

    overload = fresh.get("overload")
    if overload:
        if not overload.get("allWalksCompleted"):
            failures.append(
                "overload: a client walk did not complete — sheds "
                "must be retryable Overloaded replies, not lost work")
    elif baseline.get("overload"):
        failures.append("fresh report lacks the \"overload\" block "
                        "the baseline has")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench_service results against a baseline.")
    parser.add_argument("fresh", help="freshly generated report")
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="max fractional aggMbPerSec drop per "
                             "sweep row (default 0.30)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    baseline = load(args.baseline)

    mismatches = hosts_comparable(fresh, baseline)
    if mismatches:
        print("bench gate: host shape differs from the baseline's — "
              "numbers are not comparable, skipping:")
        print("\n".join(mismatches))
        return 0

    kind = fresh.get("bench", "service")
    if kind != baseline.get("bench", "service"):
        print(f"error: report kinds differ (fresh {kind!r} vs "
              f"baseline {baseline.get('bench')!r})", file=sys.stderr)
        return 2

    if kind == "net":
        failures = check_net(fresh, baseline, args.tolerance)
        if failures:
            print("bench gate: REGRESSION")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        rows = len(baseline.get("connectionSweep", []))
        print(f"bench gate: ok ({rows} connection-sweep rows within "
              f"{100 * args.tolerance:.0f}%, overload walks complete)")
        return 0

    failures = []
    fresh_rows = sweep_index(fresh)
    base_rows = sweep_index(baseline)

    # Per-row throughput drop vs baseline.
    for key, base_row in sorted(base_rows.items()):
        fresh_row = fresh_rows.get(key)
        if fresh_row is None:
            failures.append(
                f"sweep row clients={key[0]} budget={key[1]}: "
                f"missing from fresh report")
            continue
        base_agg = base_row["aggMbPerSec"]
        fresh_agg = fresh_row["aggMbPerSec"]
        if base_agg > 0 and fresh_agg < base_agg * (1 - args.tolerance):
            failures.append(
                f"sweep row clients={key[0]} budget={key[1]}: "
                f"aggMbPerSec {fresh_agg:.1f} is "
                f"{100 * (1 - fresh_agg / base_agg):.1f}% below "
                f"baseline {base_agg:.1f} "
                f"(tolerance {100 * args.tolerance:.0f}%)")

    # Contended-cache acceptance: scan-resistant admission must keep
    # the small-budget row at least as fast as running with no cache.
    accept = fresh_rows.get((ACCEPT_CLIENTS, ACCEPT_BUDGET))
    cache_off = fresh_rows.get((ACCEPT_CLIENTS, 0))
    if accept and cache_off:
        floor = cache_off["aggMbPerSec"] * (1 - CACHE_OFF_SLACK)
        if accept["aggMbPerSec"] < floor:
            failures.append(
                f"{ACCEPT_CLIENTS}-client 4MiB row: "
                f"{accept['aggMbPerSec']:.1f} MB/s is slower than "
                f"cache-off {cache_off['aggMbPerSec']:.1f} MB/s "
                f"beyond {100 * CACHE_OFF_SLACK:.0f}% noise — the "
                f"cache is hurting under contention")
    else:
        failures.append(
            "fresh report lacks the 64-client 4MiB and/or cache-off "
            "sweep rows needed for the contended-cache acceptance")

    # Mixed QoS scenario gates.
    mixed = fresh.get("mixed")
    if mixed:
        if mixed["interactiveP99Ms"] >= mixed["batchP50Ms"]:
            failures.append(
                f"mixed: interactive p99 {mixed['interactiveP99Ms']}ms "
                f">= batch p50 {mixed['batchP50Ms']}ms — priority "
                f"scheduling is not isolating the interactive client")
        only = mixed["streamersOnlyAggMbPerSec"]
        batch = mixed["batchAggMbPerSec"]
        if only > 0 and batch < only * (1 - MIXED_BATCH_SLACK):
            failures.append(
                f"mixed: batch agg {batch:.1f} MB/s fell more than "
                f"{100 * MIXED_BATCH_SLACK:.0f}% below streamers-only "
                f"{only:.1f} MB/s — the interactive client is "
                f"starving batch work")
    elif baseline.get("mixed"):
        failures.append("fresh report lacks the \"mixed\" block the "
                        "baseline has")

    if failures:
        print("bench gate: REGRESSION")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    print(f"bench gate: ok ({len(base_rows)} sweep rows within "
          f"{100 * args.tolerance:.0f}%, contended-cache and mixed-QoS "
          f"acceptance hold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
