#!/usr/bin/env bash
# Check C++ formatting against .clang-format.  Non-blocking lint: exits
# 0 when clang-format is unavailable, 1 when files need reformatting.
#
# Usage: scripts/check_format.sh [--fix]
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
    echo "check_format: $CLANG_FORMAT not found - skipping format check" >&2
    exit 0
fi

# --others picks up brand-new files that have not been `git add`ed yet.
mapfile -t files < <(git ls-files --cached --others --exclude-standard \
    'src/**/*.hh' 'src/**/*.cc' \
    'tests/*.cc' 'examples/*.cpp' 'bench/*.cc' 'bench/common/*')

if [[ "${1:-}" == "--fix" ]]; then
    "$CLANG_FORMAT" -i "${files[@]}"
    echo "check_format: reformatted ${#files[@]} files"
    exit 0
fi

status=0
for f in "${files[@]}"; do
    if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
        echo "needs formatting: $f"
        status=1
    fi
done

if [[ $status -eq 0 ]]; then
    echo "check_format: ${#files[@]} files clean"
fi
exit $status
