/**
 * @file
 * Tests for container v2: chunked archives, the chunk index, the
 * v1 backward-compatibility path, and chunk-parallel decode being
 * byte-identical to sequential decode.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

/** Sorted multiset view of (bases, quals) records. */
std::multiset<std::pair<std::string, std::string>>
recordSet(const ReadSet &rs)
{
    std::multiset<std::pair<std::string, std::string>> set;
    for (const auto &read : rs.reads)
        set.emplace(read.bases, read.quals);
    return set;
}

/** Element-wise equality including headers. */
void
expectSameReads(const ReadSet &a, const ReadSet &b)
{
    ASSERT_EQ(a.reads.size(), b.reads.size());
    for (size_t i = 0; i < a.reads.size(); i++) {
        EXPECT_EQ(a.reads[i].bases, b.reads[i].bases) << "read " << i;
        EXPECT_EQ(a.reads[i].quals, b.reads[i].quals) << "read " << i;
        EXPECT_EQ(a.reads[i].header, b.reads[i].header) << "read " << i;
    }
}

// ---------------------------------------------------------------------
// Round trips across chunk sizes
// ---------------------------------------------------------------------

class ChunkedRoundTrip : public ::testing::TestWithParam<uint32_t>
{};

TEST_P(ChunkedRoundTrip, ShortReadsLossless)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = GetParam();
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    SageDecoder decoder(archive.bytes);
    EXPECT_EQ(decoder.info().params.version, kFormatVersionChunked);
    const uint64_t reads = ds.readSet.reads.size();
    const uint64_t chunk = GetParam();
    EXPECT_EQ(decoder.chunkCount(), (reads + chunk - 1) / chunk);
    const ReadSet back = decoder.decodeAll();
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

TEST_P(ChunkedRoundTrip, LongReadsLossless)
{
    DatasetSpec spec = makeTinySpec(true);
    spec.sequencer.chimeraProb = 0.3;
    const SimulatedDataset ds = synthesizeDataset(spec);
    SageConfig config;
    config.chunkReads = GetParam();
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    const ReadSet back = sageDecompress(archive.bytes);
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

// Chunk of 1 read (one chunk per read), a prime size that never divides
// the read count evenly, and a mid-size many-chunk configuration.
INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkedRoundTrip,
                         ::testing::Values(1u, 7u, 64u));

TEST(ChunkedArchive, ExactlyOneChunkWhenSizeMatchesReadCount)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads =
        static_cast<uint32_t>(ds.readSet.reads.size());
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    SageDecoder decoder(archive.bytes);
    EXPECT_EQ(decoder.chunkCount(), 1u);
    const ReadSet back = decoder.decodeAll();
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

TEST(ChunkedArchive, EscapeReadsCrossChunks)
{
    // Many N-reads force escape payloads; tiny chunks make escape-
    // stream offsets matter on nearly every boundary.
    DatasetSpec spec = makeTinySpec(false);
    spec.sequencer.nReadProb = 0.3;
    const SimulatedDataset ds = synthesizeDataset(spec);
    SageConfig config;
    config.chunkReads = 5;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    const ReadSet back = sageDecompress(archive.bytes);
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

TEST(ChunkedArchive, EmptyReadSetStillChunked)
{
    ReadSet rs;
    rs.name = "empty";
    const std::string consensus(1000, 'A');
    SageConfig config;
    config.chunkReads = 16;
    const SageArchive archive = sageCompress(rs, consensus, config);
    const ReadSet back = sageDecompress(archive.bytes);
    EXPECT_TRUE(back.reads.empty());
}

TEST(ChunkedArchive, StreamingNextMatchesDecodeAllAcrossChunks)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 13;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    SageDecoder a(archive.bytes), b(archive.bytes);
    ASSERT_GT(a.chunkCount(), 1u);
    const ReadSet all = b.decodeAll();
    size_t i = 0;
    while (a.hasNext()) {
        const Read read = a.next();
        ASSERT_LT(i, all.reads.size());
        EXPECT_EQ(read.bases, all.reads[i].bases);
        EXPECT_EQ(read.quals, all.reads[i].quals);
        i++;
    }
    EXPECT_EQ(i, all.reads.size());
}

// ---------------------------------------------------------------------
// v1 backward compatibility
// ---------------------------------------------------------------------

TEST(ChunkedArchive, V1ArchiveStillDecodes)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 0; // Legacy single-stream layout.
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    SageDecoder decoder(archive.bytes);
    EXPECT_EQ(decoder.info().params.version, kFormatVersionLegacy);
    EXPECT_FALSE(decoder.info().streamSizes.count("chunks"));
    EXPECT_EQ(decoder.chunkCount(), 1u);
    const ReadSet back = decoder.decodeAll();
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));

    // The parallel entry point degrades gracefully on one chunk.
    ThreadPool pool(4);
    SageDecoder par(archive.bytes);
    expectSameReads(par.decodeAll(&pool), back);
}

// ---------------------------------------------------------------------
// Parallel decode == sequential decode
// ---------------------------------------------------------------------

TEST(ParallelDecode, MatchesSequentialReadSet)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.sequencer.nReadProb = 0.05; // Exercise escapes too.
    const SimulatedDataset ds = synthesizeDataset(spec);
    SageConfig config;
    config.chunkReads = 9;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    SageDecoder seq(archive.bytes);
    ASSERT_GT(seq.chunkCount(), 1u);
    const ReadSet expect = seq.decodeAll();

    ThreadPool pool(4);
    SageDecoder par(archive.bytes);
    const ReadSet got = par.decodeAll(&pool);
    expectSameReads(got, expect);
    EXPECT_EQ(par.eventsDecoded(), seq.eventsDecoded());
}

TEST(ParallelDecode, RestoresPreservedOrder)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 11;
    config.preserveOrder = true;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    ThreadPool pool(4);
    SageDecoder par(archive.bytes);
    ASSERT_GT(par.chunkCount(), 1u);
    const ReadSet got = par.decodeAll(&pool);
    ASSERT_EQ(got.reads.size(), ds.readSet.reads.size());
    for (size_t i = 0; i < got.reads.size(); i++) {
        EXPECT_EQ(got.reads[i].bases, ds.readSet.reads[i].bases);
        EXPECT_EQ(got.reads[i].quals, ds.readSet.reads[i].quals);
        EXPECT_EQ(got.reads[i].header, ds.readSet.reads[i].header);
    }
}

TEST(ParallelDecode, MatchesSequentialPacked)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 7;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    SageDecoder seq(archive.bytes, /*dna_only=*/true);
    const auto expect = seq.decodeAllPacked(OutputFormat::TwoBit);

    ThreadPool pool(4);
    SageDecoder par(archive.bytes, /*dna_only=*/true);
    const auto got = par.decodeAllPacked(OutputFormat::TwoBit, &pool);
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < got.size(); i++)
        EXPECT_EQ(got[i], expect[i]) << "read " << i;
}

TEST(ParallelDecode, LongChimericReads)
{
    DatasetSpec spec = makeTinySpec(true);
    spec.sequencer.chimeraProb = 0.4;
    const SimulatedDataset ds = synthesizeDataset(spec);
    SageConfig config;
    config.chunkReads = 6;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    SageDecoder seq(archive.bytes);
    const ReadSet expect = seq.decodeAll();

    ThreadPool pool(3);
    SageDecoder par(archive.bytes);
    expectSameReads(par.decodeAll(&pool), expect);
}

TEST(ParallelDecode, EveryOptimizationLevel)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    ThreadPool pool(4);
    for (unsigned level = 0; level <= 4; level++) {
        SageConfig config = SageConfig::atLevel(level);
        config.chunkReads = 10;
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config);
        SageDecoder seq(archive.bytes);
        const ReadSet expect = seq.decodeAll();
        SageDecoder par(archive.bytes);
        const ReadSet got = par.decodeAll(&pool);
        ASSERT_EQ(got.reads.size(), expect.reads.size())
            << "level " << level;
        for (size_t i = 0; i < got.reads.size(); i++) {
            EXPECT_EQ(got.reads[i].bases, expect.reads[i].bases)
                << "level " << level << " read " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Chunk table plumbing
// ---------------------------------------------------------------------

TEST(ChunkTableSer, RoundTrip)
{
    ChunkTable table;
    table.entries.resize(3);
    table.entries[0].readCount = 64;
    table.entries[1].readCount = 64;
    table.entries[2].readCount = 17;
    for (unsigned s = 0; s < kChunkStreamCount; s++) {
        table.entries[1].offsets[s] = 100 + s;
        table.entries[2].offsets[s] = 100000 + 257 * s;
    }
    const ChunkTable back = ChunkTable::deserialize(table.serialize());
    ASSERT_EQ(back.entries.size(), table.entries.size());
    for (size_t c = 0; c < back.entries.size(); c++) {
        EXPECT_EQ(back.entries[c].readCount,
                  table.entries[c].readCount);
        EXPECT_EQ(back.entries[c].offsets, table.entries[c].offsets);
    }
}

TEST(ChunkTableSer, ChunkedArchiveIsOnlyMarginallyLarger)
{
    // The chunk table + per-chunk alignment padding must stay a small
    // tax relative to the unchunked archive.
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig v1;
    v1.chunkReads = 0;
    SageConfig v2;
    v2.chunkReads = 32;
    const SageArchive a1 = sageCompress(ds.readSet, ds.reference, v1);
    const SageArchive a2 = sageCompress(ds.readSet, ds.reference, v2);
    EXPECT_LT(static_cast<double>(a2.bytes.size()),
              1.05 * static_cast<double>(a1.bytes.size()));
}

} // namespace
} // namespace sage
