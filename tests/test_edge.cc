/**
 * @file
 * Cross-cutting edge-case and design-choice tests:
 *  - prefix-code LUT fast path vs the slow path for >10-bit codes,
 *  - top-N matching positions ablation (paper footnote 7: N = 3),
 *  - host-parallelism calibration semantics in the pipeline model,
 *  - SAGe device multi-file behaviour and output-format fidelity,
 *  - tuned-codec width boundaries.
 */

#include <gtest/gtest.h>

#include "compress/gpzip.hh"
#include "core/sage.hh"
#include "genomics/fastq.hh"
#include "pipeline/pipeline.hh"
#include "accel/mappers.hh"
#include "simgen/synthesize.hh"
#include "ssd/sage_device.hh"
#include "util/prefix_code.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

// ---------------------------------------------------------------------
// Prefix code: long codes exercise the slow path behind the LUT
// ---------------------------------------------------------------------

TEST(PrefixCodeEdge, LongCodesDecodeThroughSlowPath)
{
    // Exponential frequencies force code lengths past the 10-bit LUT.
    std::vector<uint64_t> freqs(18);
    uint64_t f = 1;
    for (size_t s = 0; s < freqs.size(); s++) {
        freqs[s] = f;
        f = f < (uint64_t(1) << 40) ? f * 2 : f;
    }
    const PrefixCode code = PrefixCode::fromFrequencies(freqs);
    unsigned max_len = 0;
    for (uint8_t len : code.lengths())
        max_len = std::max<unsigned>(max_len, len);
    ASSERT_GT(max_len, 10u) << "test needs codes longer than the LUT";

    BitWriter bw;
    std::vector<unsigned> symbols;
    Rng rng(71);
    for (int i = 0; i < 20000; i++) {
        const unsigned s =
            static_cast<unsigned>(rng.nextBelow(freqs.size()));
        symbols.push_back(s);
        code.encode(bw, s);
    }
    const auto bytes = bw.take();
    BitReader br(bytes);
    for (unsigned s : symbols)
        ASSERT_EQ(code.decode(br), s);
}

TEST(PrefixCodeEdge, DecodeAtStreamTailWithPeekPadding)
{
    // A single short code at the very end: peekBits pads with zeros
    // beyond EOF and the decode must still resolve correctly.
    std::vector<uint64_t> freqs = {3, 1};
    const PrefixCode code = PrefixCode::fromFrequencies(freqs);
    BitWriter bw;
    code.encode(bw, 1);
    const auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(code.decode(br), 1u);
}

// ---------------------------------------------------------------------
// Top-N matching positions (paper §5.1.2, footnote 7)
// ---------------------------------------------------------------------

TEST(TopNAblation, ChimeraHeavySetsPreferMultipleSegments)
{
    DatasetSpec spec = makeTinySpec(true);
    spec.sequencer.chimeraProb = 0.5;
    spec.depth = 3.0;
    const SimulatedDataset ds = synthesizeDataset(spec);
    ThreadPool pool;

    std::vector<uint64_t> dna_bytes;
    for (unsigned n : {1u, 3u}) {
        SageConfig config;
        config.maxSegments = n;
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config, &pool);
        dna_bytes.push_back(archive.dnaBytes);
        // Losslessness must hold at every N.
        const ReadSet back = sageDecompress(archive.bytes);
        ASSERT_EQ(back.reads.size(), ds.readSet.reads.size());
    }
    // N=3 (the paper's choice) must beat single-position encoding on
    // chimera-heavy data.
    EXPECT_LT(dna_bytes[1], dna_bytes[0]);
}

// ---------------------------------------------------------------------
// Pipeline calibration semantics
// ---------------------------------------------------------------------

WorkloadMeasurement
calibWorkload()
{
    WorkloadMeasurement work;
    work.name = "calib";
    work.fastqBytes = 100 << 20;
    work.totalReads = 500000;
    work.totalBases = 75'000'000;
    work.pigzBytes = 20 << 20;
    work.springBytes = 6 << 20;
    work.sageBytes = 7 << 20;
    work.sageDnaStreamBytes = 3 << 20;
    work.pigzDecompSeconds = 1.0;
    work.springDecompSeconds = 1.0;
    work.springBackendSeconds = 0.4;
    work.sageSwDecompSeconds = 0.4;
    return work;
}

TEST(PipelineCalibration, ParallelSpeedupAppliesToSpringNotPigz)
{
    const WorkloadMeasurement work = calibWorkload();
    SystemConfig slow;
    slow.mapper = gemAccelerator();
    slow.hostParallelSpeedup = 1.0;
    SystemConfig fast = slow;
    fast.hostParallelSpeedup = 8.0;

    // Spring prep scales with the factor...
    const double spr_slow =
        dataPrepSeconds(work, PrepConfig::NSpr, slow);
    const double spr_fast =
        dataPrepSeconds(work, PrepConfig::NSpr, fast);
    EXPECT_GT(spr_slow, spr_fast * 2);
    // ...pigz (serial gzip decode) does not.
    const double pigz_slow =
        dataPrepSeconds(work, PrepConfig::Pigz, slow);
    const double pigz_fast =
        dataPrepSeconds(work, PrepConfig::Pigz, fast);
    EXPECT_NEAR(pigz_slow, pigz_fast, pigz_slow * 0.01);
}

TEST(PipelineCalibration, BatchCountBarelyChangesMakespan)
{
    // Pipelining result: more batches shrink fill/drain, never change
    // the steady-state bottleneck.
    const WorkloadMeasurement work = calibWorkload();
    SystemConfig a;
    a.mapper = gemAccelerator();
    a.batches = 8;
    SystemConfig b = a;
    b.batches = 128;
    const double t_a =
        evaluateEndToEnd(work, PrepConfig::NSpr, a).seconds;
    const double t_b =
        evaluateEndToEnd(work, PrepConfig::NSpr, b).seconds;
    EXPECT_LT(std::abs(t_a - t_b) / t_a, 0.25);
    EXPECT_GE(t_a, t_b); // Fewer batches => more fill/drain exposure.
}

// ---------------------------------------------------------------------
// SAGe device: multiple files and format fidelity
// ---------------------------------------------------------------------

TEST(SageDeviceEdge, MultipleArchivesCoexist)
{
    const SimulatedDataset a = synthesizeDataset(makeTinySpec(false));
    DatasetSpec spec_b = makeTinySpec(false);
    spec_b.seed = 777;
    const SimulatedDataset b = synthesizeDataset(spec_b);

    SageDevice device;
    device.sageWrite("a", sageCompress(a.readSet, a.reference));
    device.sageWrite("b", sageCompress(b.readSet, b.reference));
    device.write("notes.txt", std::vector<uint8_t>{1, 2, 3});

    EXPECT_EQ(device.sageRead("a", OutputFormat::Ascii)
                  .packedReads.size(),
              a.readSet.reads.size());
    EXPECT_EQ(device.sageRead("b", OutputFormat::Ascii)
                  .packedReads.size(),
              b.readSet.reads.size());
    EXPECT_TRUE(device.ftl().genomicLayoutAligned());
    device.remove("a");
    EXPECT_EQ(device.sageRead("b", OutputFormat::Ascii)
                  .packedReads.size(),
              b.readSet.reads.size());
}

TEST(SageDeviceEdge, AsciiOutputMatchesDecodedReads)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    SageDevice device;
    device.sageWrite("rs", archive);
    const auto result = device.sageRead("rs", OutputFormat::Ascii);

    SageDecoder decoder(archive.bytes, /*dna_only=*/true);
    size_t i = 0;
    while (decoder.hasNext()) {
        const Read read = decoder.next();
        const std::string ascii(result.packedReads[i].begin(),
                                result.packedReads[i].end());
        ASSERT_EQ(ascii, read.bases) << "read " << i;
        i++;
    }
}

// ---------------------------------------------------------------------
// Tuned codec width boundaries
// ---------------------------------------------------------------------

TEST(TunedCodecEdge, FiftySevenBitValuesRoundTrip)
{
    std::vector<uint64_t> values = {0, 1, (uint64_t(1) << 56),
                                    (uint64_t(1) << 57) - 1};
    const AssociationTable table = TunedFieldCodec::tuneFor(values);
    TunedArrayEncoder enc(table);
    for (uint64_t v : values)
        enc.append(v);
    const auto array = enc.takeArray();
    const auto guide = enc.takeGuide();
    TunedArrayDecoder dec(table, BitReader(array), BitReader(guide));
    for (uint64_t v : values)
        EXPECT_EQ(dec.next(), v);
}

TEST(TunedCodecEdge, CostBitsMatchesActualEncoding)
{
    Rng rng(88);
    std::vector<uint64_t> values;
    for (int i = 0; i < 5000; i++)
        values.push_back(rng.nextGeometric(0.2));
    const AssociationTable table = TunedFieldCodec::tuneFor(values);
    const TunedFieldCodec codec(table);

    uint64_t predicted = 0;
    for (uint64_t v : values)
        predicted += codec.costBits(v);
    TunedArrayEncoder enc(table);
    for (uint64_t v : values)
        enc.append(v);
    EXPECT_EQ(enc.arrayBits() + enc.guideBits(), predicted);
}

// ---------------------------------------------------------------------
// FASTQ robustness
// ---------------------------------------------------------------------

TEST(FastqEdge, RejectsMalformedRecords)
{
    EXPECT_EXIT({ ReadSet rs = fromFastq("not-a-record\nACGT\n+\n!!\n");
                  (void)rs; },
                ::testing::ExitedWithCode(1), ".*");
    EXPECT_EXIT({ ReadSet rs = fromFastq("@r\nACGT\n"); (void)rs; },
                ::testing::ExitedWithCode(1), ".*");
    EXPECT_EXIT({ ReadSet rs = fromFastq("@r\nACGT\n+\n!!!\n");
                  (void)rs; },
                ::testing::ExitedWithCode(1), ".*");
}

TEST(FastqEdge, ToleratesMissingTrailingNewline)
{
    const ReadSet rs = fromFastq("@r\nACGT\n+\nIIII");
    ASSERT_EQ(rs.reads.size(), 1u);
    EXPECT_EQ(rs.reads[0].quals, "IIII");
}

TEST(FastqEdge, CrlfLineEndingsAreFraming)
{
    // The '\r' of CRLF input is line framing, not data: it must not
    // reach the stored bases/quals nor trip the base-character guard.
    const ReadSet rs =
        fromFastq("@r1\r\nACGT\r\n+\r\nIIII\r\n@r2\r\nTTNN\r\n+\r\n"
                  "JJJJ\r\n");
    ASSERT_EQ(rs.reads.size(), 2u);
    EXPECT_EQ(rs.reads[0].header, "r1");
    EXPECT_EQ(rs.reads[0].bases, "ACGT");
    EXPECT_EQ(rs.reads[0].quals, "IIII");
    EXPECT_EQ(rs.reads[1].bases, "TTNN");
}

TEST(FastqEdge, BinaryGarbageInBasesDies)
{
    EXPECT_EXIT({ fromFastq("@r\nAC\x01G\n+\nIIII\n"); },
                ::testing::ExitedWithCode(1), "invalid base character");
}

} // namespace
} // namespace sage
