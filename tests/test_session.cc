/**
 * @file
 * Tests for the streaming session API (io/session.hh): SageWriter
 * streaming archives to sinks/files, SageReader chunk-range random
 * access over files and striped sources, v1 compatibility, and the
 * corrupt/truncated error paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/sage.hh"
#include "io/striped.hh"
#include "simgen/synthesize.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

/** Sorted multiset view of (bases, quals) records. */
std::multiset<std::pair<std::string, std::string>>
recordSet(const ReadSet &rs)
{
    std::multiset<std::pair<std::string, std::string>> set;
    for (const auto &read : rs.reads)
        set.emplace(read.bases, read.quals);
    return set;
}

/** Element-wise equality including headers. */
void
expectSameReads(const std::vector<Read> &a, const std::vector<Read> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].bases, b[i].bases) << "read " << i;
        EXPECT_EQ(a[i].quals, b[i].quals) << "read " << i;
        EXPECT_EQ(a[i].header, b[i].header) << "read " << i;
    }
}

std::string
scratchPath(const std::string &name)
{
    return ::testing::TempDir() + "sage_session_" + name;
}

/** Scratch path unique to the running test: ctest runs every test as
 *  its own parallel process, so fixture files must not collide. */
std::string
perTestScratchPath(const std::string &suffix)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return scratchPath(std::string(info->test_suite_name()) + "_" +
                       info->name() + "_" + suffix);
}

/** Compress @p ds with @p config through the legacy one-call API. */
SageArchive
compress(const SimulatedDataset &ds, const SageConfig &config = {})
{
    return sageCompress(ds.readSet, ds.reference, config);
}

// ---------------------------------------------------------------------
// SageWriter
// ---------------------------------------------------------------------

TEST(SageWriterTest, MemorySinkMatchesLegacyCompressByteForByte)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive expect = compress(ds);

    MemorySink sink;
    SageWriter writer(sink);
    writer.add(ds.readSet);
    const SageWriteStats stats = writer.finish(ds.reference);

    // The streamed container is the same format, byte for byte.
    EXPECT_EQ(sink.bytes(), expect.bytes);
    EXPECT_EQ(stats.archiveBytes, expect.bytes.size());
    EXPECT_EQ(stats.streamSizes, expect.streamSizes);
    EXPECT_EQ(stats.dnaBytes, expect.dnaBytes);
    EXPECT_EQ(stats.qualityBytes, expect.qualityBytes);
    EXPECT_EQ(stats.metaBytes, expect.metaBytes);
}

TEST(SageWriterTest, FileSessionRoundTrip)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const std::string path = scratchPath("roundtrip.sage");

    SageWriter writer(path);
    for (const Read &read : ds.readSet.reads)
        writer.add(read); // One-at-a-time add() path.
    EXPECT_EQ(writer.pendingReads(), ds.readSet.reads.size());
    const SageWriteStats stats = writer.finish(ds.reference);

    FileSource file(path);
    EXPECT_EQ(file.size(), stats.archiveBytes);

    SageReader reader(path);
    EXPECT_EQ(reader.readCount(), ds.readSet.reads.size());
    const ReadSet back = reader.decodeAll();
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Chunk-range random access
// ---------------------------------------------------------------------

class RangeDecode : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ds_ = synthesizeDataset(makeTinySpec(false));
        SageConfig config;
        config.chunkReads = 13;
        archive_ = compress(ds_, config);
        path_ = perTestScratchPath("range.sage");
        {
            FileSink sink(path_);
            sink.writeBytes(archive_.bytes);
        }
    }

    void TearDown() override { std::remove(path_.c_str()); }

    SimulatedDataset ds_;
    SageArchive archive_;
    std::string path_;
};

TEST_F(RangeDecode, RangeEqualsMatchingDecodeAllSlice)
{
    // Stored-order reference via the whole-archive path.
    SageReader whole(path_);
    const size_t chunks = whole.chunkCount();
    ASSERT_GT(chunks, 2u);
    const ReadSet all = whole.decodeAll();

    SageReader reader(path_); // Fresh session for random access.
    for (size_t first = 0; first < chunks; first += 2) {
        for (size_t count : {size_t{1}, size_t{2}, chunks - first}) {
            if (count > chunks - first)
                continue;
            const ReadSet part = reader.decodeRange(first, count);
            const size_t base =
                static_cast<size_t>(reader.chunkFirstRead(first));
            ASSERT_LE(base + part.reads.size(), all.reads.size());
            for (size_t i = 0; i < part.reads.size(); i++) {
                EXPECT_EQ(part.reads[i].bases,
                          all.reads[base + i].bases)
                    << "chunk range [" << first << ", "
                    << first + count << ") read " << i;
                EXPECT_EQ(part.reads[i].quals,
                          all.reads[base + i].quals);
            }
        }
    }
}

TEST_F(RangeDecode, ParallelRangeMatchesSequentialRange)
{
    SageReader reader(path_);
    ASSERT_GT(reader.chunkCount(), 3u);
    ThreadPool pool(4);
    const ReadSet seq = reader.decodeRange(1, 3);
    const ReadSet par = reader.decodeRange(1, 3, &pool);
    expectSameReads(par.reads, seq.reads);
}

TEST_F(RangeDecode, ReadChunkIsRepeatable)
{
    SageReader reader(path_);
    ASSERT_GT(reader.chunkCount(), 1u);
    const std::vector<Read> once = reader.readChunk(1);
    const std::vector<Read> twice = reader.readChunk(1);
    ASSERT_FALSE(once.empty());
    // Headers and quality survive repeated random access (they are
    // copied, not moved, on this path).
    EXPECT_FALSE(once.front().header.empty());
    expectSameReads(twice, once);
    EXPECT_EQ(once.size(), reader.chunkReadCount(1));
}

TEST_F(RangeDecode, RangeDecodeTouchesOnlyItsChunks)
{
    // A reader over a file plus per-chunk fetch sizes: decoding one
    // chunk must not require the other chunks' bytes. Approximate by
    // checking the decoder's per-chunk costs cover the DNA payload and
    // that single-chunk decode works on every chunk independently.
    SageReader reader(path_);
    const auto chunk_bytes = reader.chunkCompressedBytes();
    ASSERT_EQ(chunk_bytes.size(), reader.chunkCount());
    uint64_t total = 0;
    for (uint64_t bytes : chunk_bytes)
        total += bytes;
    EXPECT_GT(total, 0u);
    EXPECT_LT(total, reader.info().totalCompressedBytes);
    for (size_t c = 0; c < reader.chunkCount(); c++) {
        const std::vector<Read> chunk = reader.readChunk(c);
        EXPECT_EQ(chunk.size(), reader.chunkReadCount(c));
    }
}

TEST_F(RangeDecode, OutOfRangeChunkDies)
{
    SageReader reader(path_);
    const size_t chunks = reader.chunkCount();
    EXPECT_DEATH({ auto rs = reader.decodeRange(chunks, 1); (void)rs; },
                 "out of bounds");
}

// ---------------------------------------------------------------------
// Sequential contract through the session
// ---------------------------------------------------------------------

TEST(SageReaderTest, NextWalkMatchesDecodeAll)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 9;
    const SageArchive archive = compress(ds, config);

    MemorySource source(archive.bytes);
    SageReader a(source);
    SageReader b(source);
    const ReadSet all = a.decodeAll();
    size_t i = 0;
    while (b.hasNext()) {
        const Read read = b.next();
        ASSERT_LT(i, all.reads.size());
        EXPECT_EQ(read.bases, all.reads[i].bases);
        EXPECT_EQ(read.quals, all.reads[i].quals);
        i++;
    }
    EXPECT_EQ(i, all.reads.size());
}

TEST(SageReaderTest, DnaOnlySkipsQuality)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = compress(ds);
    MemorySource source(archive.bytes);
    SageReaderOptions options;
    options.dnaOnly = true;
    SageReader reader(source, options);
    const ReadSet back = reader.decodeAll();
    ASSERT_FALSE(back.reads.empty());
    for (const Read &read : back.reads)
        EXPECT_TRUE(read.quals.empty());
}

// ---------------------------------------------------------------------
// v1 archives through the session API
// ---------------------------------------------------------------------

TEST(SageReaderTest, V1ArchiveDecodesAsOneChunk)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 0; // Legacy single-stream layout.
    const SageArchive archive = compress(ds, config);

    MemorySource source(archive.bytes);
    SageReader reader(source);
    EXPECT_EQ(reader.info().params.version, kFormatVersionLegacy);
    EXPECT_EQ(reader.chunkCount(), 1u);
    EXPECT_EQ(reader.chunkReadCount(0), ds.readSet.reads.size());

    const ReadSet ranged = reader.decodeRange(0, 1);
    EXPECT_EQ(recordSet(ranged), recordSet(ds.readSet));

    SageReader whole(source);
    EXPECT_EQ(recordSet(whole.decodeAll()), recordSet(ds.readSet));
}

// ---------------------------------------------------------------------
// Striped sources
// ---------------------------------------------------------------------

TEST(SageReaderTest, StripedDecodeByteIdenticalAcrossWidths)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 17;
    const SageArchive archive = compress(ds, config);

    MemorySource flat(archive.bytes);
    SageReaderOptions dna;
    dna.dnaOnly = true;
    SageReader reference(flat, dna);
    const auto expect = reference.decodeAllPacked(OutputFormat::TwoBit);

    ThreadPool pool(3);
    for (size_t width : {size_t{1}, size_t{2}, size_t{4}}) {
        const auto shards = stripeShards(archive.bytes, width, 512);
        std::vector<MemorySource> sources;
        sources.reserve(width);
        for (const auto &shard : shards)
            sources.emplace_back(shard);
        std::vector<const ByteSource *> refs;
        for (const auto &src : sources)
            refs.push_back(&src);
        StripedSource striped(std::move(refs), 512);

        SageReader reader(striped, dna);
        const auto got = reader.decodeAllPacked(OutputFormat::TwoBit,
                                                &pool);
        ASSERT_EQ(got.size(), expect.size()) << width << " stripes";
        for (size_t i = 0; i < got.size(); i++)
            EXPECT_EQ(got[i], expect[i])
                << width << " stripes, read " << i;
    }
}

// ---------------------------------------------------------------------
// Prefetch-next-chunk mode
// ---------------------------------------------------------------------

class PrefetchDecode : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ds_ = synthesizeDataset(makeTinySpec(false));
        SageConfig config;
        config.chunkReads = 11;
        config.preserveOrder = true;
        archive_ = compress(ds_, config);
        path_ = perTestScratchPath("prefetch.sage");
        {
            FileSink sink(path_);
            sink.writeBytes(archive_.bytes);
        }
    }

    void TearDown() override { std::remove(path_.c_str()); }

    SageReaderOptions
    prefetchOptions() const
    {
        SageReaderOptions options;
        options.prefetch = true;
        return options;
    }

    SimulatedDataset ds_;
    SageArchive archive_;
    std::string path_;
};

TEST_F(PrefetchDecode, DecodeAllOverFileSourceIsByteIdentical)
{
    SageReader plain(path_);
    const ReadSet expect = plain.decodeAll();

    SageReader prefetched(path_, prefetchOptions());
    ASSERT_GT(prefetched.chunkCount(), 2u);
    const ReadSet got = prefetched.decodeAll();
    expectSameReads(got.reads, expect.reads);
}

TEST_F(PrefetchDecode, NextWalkOverFileSourceIsByteIdentical)
{
    SageReader plain(path_);
    SageReader prefetched(path_, prefetchOptions());
    while (plain.hasNext()) {
        ASSERT_TRUE(prefetched.hasNext());
        const Read a = plain.next();
        const Read b = prefetched.next();
        EXPECT_EQ(b.bases, a.bases);
        EXPECT_EQ(b.quals, a.quals);
        EXPECT_EQ(b.header, a.header);
    }
    EXPECT_FALSE(prefetched.hasNext());
}

TEST_F(PrefetchDecode, RangeAndRandomAccessSurvivePrefetchMisses)
{
    SageReader plain(path_);
    SageReader prefetched(path_, prefetchOptions());
    const size_t chunks = plain.chunkCount();
    ASSERT_GT(chunks, 3u);

    // Out-of-order chunk access: every open misses the prefetched
    // slot (it holds the *next* chunk), exercising the discard path.
    for (size_t c : {chunks - 1, size_t{0}, size_t{2}, size_t{1}}) {
        expectSameReads(prefetched.readChunk(c), plain.readChunk(c));
    }
    // Ranges, including one that rides the slot across chunks.
    const ReadSet a = plain.decodeRange(1, chunks - 1);
    const ReadSet b = prefetched.decodeRange(1, chunks - 1);
    expectSameReads(b.reads, a.reads);
}

TEST_F(PrefetchDecode, AbandonedPrefetchShutsDownCleanly)
{
    // Open, decode one chunk (leaving chunk 2's fetch in flight or
    // ready), and destroy: the decoder must drain the slot first.
    SageReader prefetched(path_, prefetchOptions());
    ASSERT_GT(prefetched.chunkCount(), 1u);
    const std::vector<Read> chunk = prefetched.readChunk(0);
    EXPECT_FALSE(chunk.empty());
}

TEST_F(PrefetchDecode, PrefetchOverMemorySourceIsByteIdentical)
{
    MemorySource source(archive_.bytes);
    SageReader plain(source);
    SageReader prefetched(source, prefetchOptions());
    const ReadSet expect = plain.decodeAll();
    const ReadSet got = prefetched.decodeAll();
    expectSameReads(got.reads, expect.reads);
}

TEST_F(PrefetchDecode, PrefetchComposesWithDecodePool)
{
    // A decode pool takes the parallel path (prefetcher idle); the
    // result must still match, and the reader must shut down cleanly
    // with both pools alive.
    SageReader plain(path_);
    const ReadSet expect = plain.decodeAll();
    ThreadPool pool(3);
    SageReader prefetched(path_, prefetchOptions());
    const ReadSet got = prefetched.decodeAll(&pool);
    expectSameReads(got.reads, expect.reads);
}

// ---------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------

TEST(SageReaderTest, TruncatedArchiveFileDies)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = compress(ds);
    const std::string path = scratchPath("truncated.sage");
    {
        FileSink sink(path);
        sink.write(archive.bytes.data(), archive.bytes.size() / 2);
    }
    EXPECT_EXIT({ SageReader reader(path); },
                ::testing::ExitedWithCode(1), ".*");
    std::remove(path.c_str());
}

TEST(SageReaderTest, ChecksumOptionCatchesBitFlip)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageArchive archive = compress(ds);
    archive.bytes[archive.bytes.size() / 3] ^= 0x04;
    MemorySource source(archive.bytes);
    SageReaderOptions verify;
    verify.verifyChecksum = true;
    EXPECT_EXIT({ SageReader reader(source, verify); },
                ::testing::ExitedWithCode(1), "CRC mismatch");
}

TEST(SageReaderTest, MissingArchiveFileDiesWithPath)
{
    EXPECT_EXIT({ SageReader reader("/nonexistent/missing.sage"); },
                ::testing::ExitedWithCode(1), "missing.sage");
}

} // namespace
} // namespace sage
