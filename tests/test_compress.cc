/**
 * @file
 * Tests for the compression substrate: gpzip (general-purpose baseline),
 * the range coder, the quality codec, the stream bundle and the
 * SpringLike genomic baseline.
 */

#include <gtest/gtest.h>

#include "compress/gpzip.hh"
#include "compress/quality.hh"
#include "compress/range_coder.hh"
#include "compress/springlike.hh"
#include "compress/streams.hh"
#include "genomics/fastq.hh"
#include "simgen/synthesize.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

std::vector<uint8_t>
randomBytes(Rng &rng, size_t n)
{
    std::vector<uint8_t> data(n);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.next());
    return data;
}

// ---------------------------------------------------------------------
// gpzip
// ---------------------------------------------------------------------

TEST(Gpzip, RoundTripText)
{
    const std::string text =
        "the quick brown fox jumps over the lazy dog. "
        "the quick brown fox jumps over the lazy dog again and again.";
    const auto archive = gpzip::compress(text);
    const auto back = gpzip::decompress(archive);
    EXPECT_EQ(std::string(back.begin(), back.end()), text);
}

TEST(Gpzip, RoundTripEmpty)
{
    const auto archive = gpzip::compress(std::string_view(""));
    const auto back = gpzip::decompress(archive);
    EXPECT_TRUE(back.empty());
    EXPECT_EQ(gpzip::originalSize(archive), 0u);
}

TEST(Gpzip, RoundTripRandom)
{
    Rng rng(42);
    const auto data = randomBytes(rng, 100000);
    const auto archive = gpzip::compress(data.data(), data.size());
    EXPECT_EQ(gpzip::decompress(archive), data);
}

TEST(Gpzip, RoundTripHighlyRepetitive)
{
    std::string text;
    for (int i = 0; i < 5000; i++)
        text += "ABCDEFGH";
    const auto archive = gpzip::compress(text);
    // Strong compression expected on pure repetition.
    EXPECT_LT(archive.size(), text.size() / 20);
    const auto back = gpzip::decompress(archive);
    EXPECT_EQ(std::string(back.begin(), back.end()), text);
}

TEST(Gpzip, RoundTripAllByteValues)
{
    std::vector<uint8_t> data;
    for (int rep = 0; rep < 10; rep++)
        for (int b = 0; b < 256; b++)
            data.push_back(static_cast<uint8_t>(b));
    const auto archive = gpzip::compress(data.data(), data.size());
    EXPECT_EQ(gpzip::decompress(archive), data);
}

TEST(Gpzip, MultiBlockParallelRoundTrip)
{
    Rng rng(43);
    // Compressible multi-block payload.
    std::vector<uint8_t> data;
    for (int i = 0; i < 400000; i++)
        data.push_back(static_cast<uint8_t>(rng.nextBelow(8)));
    gpzip::Config config;
    config.blockSize = 64 << 10;
    ThreadPool pool(4);
    const auto archive = gpzip::compress(data.data(), data.size(),
                                         config, &pool);
    EXPECT_EQ(gpzip::decompress(archive, &pool), data);
    // Parallel and serial containers decode identically.
    EXPECT_EQ(gpzip::decompress(archive), data);
}

TEST(Gpzip, CorruptionDetected)
{
    const std::string text = "some data worth protecting, repeated "
                             "some data worth protecting";
    auto archive = gpzip::compress(text);
    archive[archive.size() / 2] ^= 0x40;
    EXPECT_DEATH(
        { auto out = gpzip::decompress(archive); (void)out; }, ".*");
}

TEST(Gpzip, GenomicTextCompresses)
{
    // DNA-like text: ~2-6x is the general-compressor band the paper
    // reports for this class of tools (§2.2).
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const std::string fastq = toFastq(ds.readSet);
    const auto archive = gpzip::compress(fastq);
    const double ratio =
        static_cast<double>(fastq.size()) / archive.size();
    // General-purpose band (paper §2.2: ~2-6x on real data; synthetic
    // headers/qualities compress a bit better).
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 15.0);
}

// ---------------------------------------------------------------------
// Range coder
// ---------------------------------------------------------------------

TEST(RangeCoder, AdaptiveModelRoundTrip)
{
    Rng rng(9);
    std::vector<unsigned> symbols;
    for (int i = 0; i < 50000; i++)
        symbols.push_back(static_cast<unsigned>(
            rng.nextWeighted({80, 10, 6, 3, 1})));

    RangeEncoder enc;
    AdaptiveModel enc_model(5);
    for (unsigned s : symbols)
        enc_model.encode(enc, s);
    const auto bytes = enc.finish();

    RangeDecoder dec(bytes.data(), bytes.size());
    AdaptiveModel dec_model(5);
    for (unsigned s : symbols)
        ASSERT_EQ(dec_model.decode(dec), s);
}

TEST(RangeCoder, SkewedStreamBeatsOneBytePerSymbol)
{
    Rng rng(10);
    RangeEncoder enc;
    AdaptiveModel model(4);
    const int n = 100000;
    for (int i = 0; i < n; i++)
        model.encode(enc, rng.nextBool(0.95) ? 0 : 1 + rng.nextBelow(3));
    const auto bytes = enc.finish();
    EXPECT_LT(bytes.size(), static_cast<size_t>(n) / 8)
        << "strongly skewed stream should cost well under 1 bit/symbol";
}

// ---------------------------------------------------------------------
// Quality codec
// ---------------------------------------------------------------------

std::vector<std::string>
makeQualStrings(size_t reads, size_t len, unsigned levels, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> quals;
    for (size_t r = 0; r < reads; r++) {
        std::string q;
        char cur = 'I';
        for (size_t i = 0; i < len; i++) {
            if (rng.nextBool(0.05))
                cur = static_cast<char>('I' - rng.nextBelow(levels));
            q.push_back(cur);
        }
        quals.push_back(std::move(q));
    }
    return quals;
}

TEST(Quality, RoundTrip)
{
    const auto quals = makeQualStrings(500, 150, 6, 77);
    const QualityArchive archive = compressQuality(quals);
    EXPECT_EQ(decompressQuality(archive), quals);
}

TEST(Quality, RoundTripVariableLengths)
{
    Rng rng(78);
    std::vector<std::string> quals;
    for (int r = 0; r < 300; r++) {
        std::string q;
        const size_t len = 1 + rng.nextBelow(500);
        for (size_t i = 0; i < len; i++)
            q.push_back(static_cast<char>('!' + rng.nextBelow(40)));
        quals.push_back(std::move(q));
    }
    const QualityArchive archive = compressQuality(quals);
    EXPECT_EQ(decompressQuality(archive), quals);
}

TEST(Quality, EmptyInput)
{
    const QualityArchive archive = compressQuality({});
    EXPECT_TRUE(decompressQuality(archive).empty());
}

TEST(Quality, BlockRandomAccessMatchesFullDecode)
{
    const auto quals = makeQualStrings(2000, 150, 6, 79);
    QualityConfig config;
    config.blockChars = 40000; // Force several blocks.
    const QualityArchive archive = compressQuality(quals, config);
    ASSERT_GT(archive.blocks.size(), 2u);

    std::string flat_full;
    for (const auto &q : decompressQuality(archive))
        flat_full += q;
    std::string flat_blocks;
    for (size_t b = 0; b < archive.blocks.size(); b++)
        flat_blocks += decompressQualityBlock(archive, b);
    EXPECT_EQ(flat_blocks, flat_full);
}

TEST(Quality, CompressesBinnedScoresWell)
{
    const auto quals = makeQualStrings(2000, 150, 4, 80);
    const QualityArchive archive = compressQuality(quals);
    const double ratio = static_cast<double>(archive.totalChars())
        / static_cast<double>(archive.compressedBytes());
    // Paper Table 2 band for short-read quality: ~2.8-5.
    EXPECT_GT(ratio, 2.0);
}

// ---------------------------------------------------------------------
// Stream bundle
// ---------------------------------------------------------------------

TEST(StreamBundle, RoundTrip)
{
    StreamBundle bundle;
    bundle.stream("alpha") = {1, 2, 3};
    bundle.stream("beta") = {};
    bundle.stream("gamma") = std::vector<uint8_t>(1000, 0xaa);
    const auto bytes = bundle.serialize();
    const StreamBundle back = StreamBundle::deserialize(bytes);
    EXPECT_EQ(back.stream("alpha"), bundle.stream("alpha"));
    EXPECT_EQ(back.stream("beta"), bundle.stream("beta"));
    EXPECT_EQ(back.stream("gamma"), bundle.stream("gamma"));
    EXPECT_EQ(back.totalBytes(), bundle.totalBytes());
}

TEST(StreamBundle, CorruptionDetected)
{
    StreamBundle bundle;
    bundle.stream("data") = std::vector<uint8_t>(100, 7);
    auto bytes = bundle.serialize();
    bytes[10] ^= 1;
    EXPECT_DEATH(
        { auto b = StreamBundle::deserialize(bytes); (void)b; }, ".*");
}

// ---------------------------------------------------------------------
// SpringLike
// ---------------------------------------------------------------------

std::multiset<std::pair<std::string, std::string>>
recordSet(const ReadSet &rs)
{
    std::multiset<std::pair<std::string, std::string>> set;
    for (const auto &read : rs.reads)
        set.emplace(read.bases, read.quals);
    return set;
}

TEST(SpringLike, ShortReadRoundTrip)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const auto result = springlike::compress(ds.readSet, ds.reference);
    const auto back = springlike::decompress(result.archive);
    EXPECT_EQ(recordSet(back.readSet), recordSet(ds.readSet));
}

TEST(SpringLike, LongReadRoundTrip)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    const auto result = springlike::compress(ds.readSet, ds.reference);
    const auto back = springlike::decompress(result.archive);
    EXPECT_EQ(recordSet(back.readSet), recordSet(ds.readSet));
}

TEST(SpringLike, PreserveOrderExact)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    springlike::Config config;
    config.preserveOrder = true;
    const auto result =
        springlike::compress(ds.readSet, ds.reference, config);
    const auto back = springlike::decompress(result.archive);
    ASSERT_EQ(back.readSet.reads.size(), ds.readSet.reads.size());
    for (size_t i = 0; i < back.readSet.reads.size(); i++)
        EXPECT_EQ(back.readSet.reads[i].bases,
                  ds.readSet.reads[i].bases);
}

TEST(SpringLike, BeatsGpzipOnDna)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0;
    const SimulatedDataset ds = synthesizeDataset(spec);
    const auto spring = springlike::compress(ds.readSet, ds.reference);

    std::string dna;
    for (const auto &read : ds.readSet.reads) {
        dna += read.bases;
        dna.push_back('\n');
    }
    const auto gp = gpzip::compress(dna);
    EXPECT_LT(spring.dnaBytes, gp.size())
        << "genomic compressor must beat the general-purpose one "
           "(paper §2.2)";
}

TEST(SpringLike, ReportsTimingSplit)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const auto result = springlike::compress(ds.readSet, ds.reference);
    EXPECT_GT(result.mapSeconds, 0.0);
    EXPECT_GT(result.encodeSeconds, 0.0);
    EXPECT_GT(result.streamSizes.size(), 5u);
}

TEST(SpringLike, WorkingSetLargerThanConsensus)
{
    // The decode working set includes backend streams — this is the
    // resource-heaviness property the paper attributes to (N)Spr.
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const auto result = springlike::compress(ds.readSet, ds.reference);
    const auto back = springlike::decompress(result.archive);
    EXPECT_GT(back.workingSetBytes, ds.reference.size());
}

} // namespace
} // namespace sage
