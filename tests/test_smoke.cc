/**
 * @file
 * Build/version smoke suite: cheap checks that run before the heavy
 * suites so CI fails fast when the build itself is broken.
 *
 *  - the library reports the expected version string,
 *  - the sage.hh umbrella header is self-contained (this TU includes
 *    nothing else from the library),
 *  - one encode -> decode round-trip through the public API works.
 */

#include "core/sage.hh"

#include <cstring>

#include <gtest/gtest.h>

namespace {

TEST(Smoke, VersionStringMatchesHeader)
{
    ASSERT_NE(sage::versionString(), nullptr);
    EXPECT_STREQ(sage::versionString(), SAGE_VERSION_STRING);
    EXPECT_GT(std::strlen(sage::versionString()), 0u);
}

TEST(Smoke, VersionComponentsComposeString)
{
    const std::string composed = std::to_string(SAGE_VERSION_MAJOR) + "." +
                                 std::to_string(SAGE_VERSION_MINOR) + "." +
                                 std::to_string(SAGE_VERSION_PATCH);
    EXPECT_EQ(composed, SAGE_VERSION_STRING);
}

TEST(Smoke, UmbrellaHeaderRoundTrip)
{
    const std::string consensus = "ACGTACGTACGTACGTACGTACGTACGTACGT";

    sage::ReadSet rs;
    rs.name = "smoke";
    rs.technology = sage::Technology::ShortAccurate;
    rs.reads.push_back({"read0", "ACGTACGTACGT", "IIIIIIIIIIII"});
    rs.reads.push_back({"read1", "CGTACGTACGTA", "IIIIIIIIIIII"});
    rs.reads.push_back({"read2", "GTACGTACGTAC", "IIIIIIIIIIII"});

    const sage::SageArchive archive = sage::sageCompress(rs, consensus);
    ASSERT_FALSE(archive.bytes.empty());

    const sage::ReadSet back = sage::sageDecompress(archive.bytes);
    ASSERT_EQ(back.readCount(), rs.readCount());
    for (size_t i = 0; i < rs.readCount(); ++i) {
        EXPECT_EQ(back.reads[i].bases, rs.reads[i].bases)
            << "base mismatch at read " << i;
    }
}

} // namespace
