/**
 * @file
 * Robustness tests: deterministic fault injection
 * (io/fault_injection.hh), hardened parsing of corrupted archives
 * (SageDecoder::tryOpen over truncated and bit-flipped containers),
 * and graceful degradation in the service layer — a failed chunk
 * decode surfaces RequestStatus::Error to the affected request only,
 * never poisons the cache, and reconciles with the injected fault
 * counts. Runs under the ASan/UBSan preset in CI, which is what
 * turns "no crash" into "no crash and no leak".
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/sage.hh"
#include "io/fault_injection.hh"
#include "simgen/synthesize.hh"

namespace sage {
namespace {

/** A counting source that fails the first @p failures try-reads with
 *  IoError, then behaves: the shape of a transient disk hiccup. */
class FlakySource final : public ByteSource
{
  public:
    FlakySource(const ByteSource &inner, int failures)
        : inner_(inner), failuresLeft_(failures)
    {}

    /** Arm the next @p n try-reads to fail. */
    void setFailures(int n) { failuresLeft_.store(n); }

    uint64_t size() const override { return inner_.size(); }
    void readAt(uint64_t offset, void *dst, size_t size) const override
    {
        inner_.readAt(offset, dst, size);
    }
    const uint8_t *view(uint64_t, size_t) const override
    {
        return nullptr; // Force the try-read path.
    }
    Status tryReadAt(uint64_t offset, void *dst,
                     size_t size) const override
    {
        if (failuresLeft_.fetch_sub(1, std::memory_order_relaxed) > 0)
            return Status::ioError("transient hiccup");
        return inner_.tryReadAt(offset, dst, size);
    }
    std::string describe() const override { return "<flaky>"; }

  private:
    const ByteSource &inner_;
    mutable std::atomic<int> failuresLeft_;
};

/** Compress a small synthetic dataset into archive bytes with enough
 *  chunks for cache/eviction traffic. */
std::vector<uint8_t>
makeArchiveBytes(unsigned chunk_reads = 512)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = chunk_reads;
    SageArchive archive = sageCompress(ds.readSet, ds.reference, config);
    return std::move(archive.bytes);
}

// ---------------------------------------------------------------------
// FaultInjectionSource
// ---------------------------------------------------------------------

TEST(FaultInjection, SameSeedSameSchedule)
{
    std::vector<uint8_t> bytes(1 << 16);
    for (size_t i = 0; i < bytes.size(); i++)
        bytes[i] = static_cast<uint8_t>(i * 131);
    const MemorySource inner(bytes);

    FaultConfig config;
    config.seed = 42;
    config.ioErrorRate = 0.1;
    config.shortReadRate = 0.1;
    config.bitFlipRate = 0.1;

    const auto runSchedule = [&](const FaultInjectionSource &source) {
        std::vector<StatusCode> codes;
        std::vector<uint8_t> dst(256);
        for (uint64_t op = 0; op < 500; op++) {
            const Status status =
                source.tryReadAt((op * 97) % (bytes.size() - dst.size()),
                                 dst.data(), dst.size());
            codes.push_back(status.code());
        }
        return codes;
    };

    const FaultInjectionSource a(inner, config);
    const FaultInjectionSource b(inner, config);
    EXPECT_EQ(runSchedule(a), runSchedule(b));
    EXPECT_EQ(a.counters().ioErrors, b.counters().ioErrors);
    EXPECT_EQ(a.counters().shortReads, b.counters().shortReads);
    EXPECT_EQ(a.counters().bitFlips, b.counters().bitFlips);
    EXPECT_EQ(a.counters().operations, 500u);
    // The schedule actually fired: ~10% per kind over 500 draws.
    EXPECT_GT(a.counters().ioErrors, 0u);
    EXPECT_GT(a.counters().shortReads, 0u);
    EXPECT_GT(a.counters().bitFlips, 0u);
}

TEST(FaultInjection, FatalPathPassesThroughUninjected)
{
    std::vector<uint8_t> bytes(4096, 0xA5);
    const MemorySource inner(bytes);
    FaultConfig config;
    config.failEveryN = 1; // Every recoverable read fails ...
    const FaultInjectionSource source(inner, config);

    // ... yet the fatal path delivers clean bytes,
    std::vector<uint8_t> dst(64, 0);
    source.readAt(128, dst.data(), dst.size());
    EXPECT_EQ(std::memcmp(dst.data(), bytes.data() + 128, dst.size()),
              0);

    // views are refused (so no caller can bypass the schedule),
    EXPECT_EQ(source.view(0, 16), nullptr);

    // and the recoverable path fails on schedule.
    EXPECT_EQ(source.tryReadAt(128, dst.data(), dst.size()).code(),
              StatusCode::IoError);
    EXPECT_EQ(source.counters().ioErrors, 1u);
}

TEST(FaultInjection, DisarmedReadsPassThroughUncounted)
{
    std::vector<uint8_t> bytes(4096, 0x3C);
    const MemorySource inner(bytes);
    FaultConfig config;
    config.failEveryN = 1;
    FaultInjectionSource source(inner, config);

    source.setArmed(false);
    std::vector<uint8_t> dst(64, 0);
    EXPECT_TRUE(source.tryReadAt(0, dst.data(), dst.size()).ok());
    EXPECT_EQ(dst[0], 0x3C);
    EXPECT_EQ(source.counters().operations, 0u);

    source.setArmed(true);
    EXPECT_FALSE(source.tryReadAt(0, dst.data(), dst.size()).ok());
    EXPECT_EQ(source.counters().operations, 1u);
}

TEST(FaultInjection, BitFlipCorruptsExactlyOneBit)
{
    std::vector<uint8_t> bytes(1024);
    for (size_t i = 0; i < bytes.size(); i++)
        bytes[i] = static_cast<uint8_t>(i);
    const MemorySource inner(bytes);
    FaultConfig config;
    config.bitFlipRate = 1.0;
    const FaultInjectionSource source(inner, config);

    std::vector<uint8_t> dst(256, 0);
    ASSERT_TRUE(source.tryReadAt(0, dst.data(), dst.size()).ok());
    int flipped_bits = 0;
    for (size_t i = 0; i < dst.size(); i++) {
        uint8_t diff = static_cast<uint8_t>(dst[i] ^ bytes[i]);
        while (diff != 0) {
            flipped_bits += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_EQ(flipped_bits, 1);
    EXPECT_EQ(source.counters().bitFlips, 1u);
}

TEST(FaultInjection, ShortReadReportsTruncated)
{
    const std::vector<uint8_t> bytes(1024, 0x77);
    const MemorySource inner(bytes);
    FaultConfig config;
    config.shortReadRate = 1.0;
    const FaultInjectionSource source(inner, config);

    std::vector<uint8_t> dst(100, 0);
    const Status status = source.tryReadAt(0, dst.data(), dst.size());
    EXPECT_EQ(status.code(), StatusCode::Truncated);
    EXPECT_EQ(source.counters().shortReads, 1u);
}

// ---------------------------------------------------------------------
// Corrupted archives: hardened parsing, never a crash
// ---------------------------------------------------------------------

TEST(CorruptArchive, TruncationAtEveryFramingBoundaryIsRecoverable)
{
    const std::vector<uint8_t> bytes = makeArchiveBytes();
    const MemorySource whole(bytes);
    const StreamDirectory dir = StreamDirectory::parse(whole);

    // Candidate cut points: the head of the container, every stream's
    // framing edges (just before the name, mid-payload, end of
    // payload), and just short of the trailer.
    std::vector<uint64_t> cuts = {0, 1, 2, 3, 5, bytes.size() - 1,
                                  bytes.size() - 4};
    for (const auto &[name, extent] : dir.extents()) {
        (void)name;
        if (extent.offset > 0)
            cuts.push_back(extent.offset - 1);
        cuts.push_back(extent.offset);
        cuts.push_back(extent.offset + extent.size / 2);
        cuts.push_back(extent.offset + extent.size);
    }

    for (const uint64_t cut : cuts) {
        ASSERT_LT(cut, bytes.size());
        const MemorySource truncated(bytes.data(),
                                     static_cast<size_t>(cut));
        const StatusOr<std::unique_ptr<SageDecoder>> opened =
            SageDecoder::tryOpen(truncated);
        ASSERT_FALSE(opened.ok()) << "cut at " << cut << " of "
                                  << bytes.size() << " parsed";
        const StatusCode code = opened.status().code();
        EXPECT_TRUE(code == StatusCode::Truncated ||
                    code == StatusCode::Corrupt ||
                    code == StatusCode::OutOfRange)
            << "cut at " << cut << ": " << opened.status().toString();
    }
}

TEST(CorruptArchive, ChecksumVerificationCatchesEveryStreamBitFlip)
{
    const std::vector<uint8_t> bytes = makeArchiveBytes();
    const StreamDirectory dir =
        StreamDirectory::parse(MemorySource(bytes));

    for (const auto &[name, extent] : dir.extents()) {
        if (extent.size == 0)
            continue;
        std::vector<uint8_t> flipped = bytes;
        flipped[extent.offset + extent.size / 2] ^= 0x10;
        const MemorySource source(flipped);
        const StatusOr<std::unique_ptr<SageDecoder>> opened =
            SageDecoder::tryOpen(source, /*dna_only=*/false,
                                 /*verify_checksum=*/true);
        ASSERT_FALSE(opened.ok())
            << "bit flip in stream " << name << " went unnoticed";
    }
}

TEST(CorruptArchive, BitFlippedStreamsNeverCrashTheDecoder)
{
    const std::vector<uint8_t> bytes = makeArchiveBytes();
    const StreamDirectory dir =
        StreamDirectory::parse(MemorySource(bytes));

    // Without checksum verification the flip reaches the parser and
    // the per-chunk decoder. Either may reject it with a Status (or,
    // for flips in slack bits, decode something) — what they must
    // never do is crash, assert, or leak (ASan preset covers leaks).
    for (const auto &[name, extent] : dir.extents()) {
        if (extent.size == 0)
            continue;
        for (const uint64_t pos :
             {extent.offset, extent.offset + extent.size / 2,
              extent.offset + extent.size - 1}) {
            std::vector<uint8_t> flipped = bytes;
            flipped[pos] ^= 0x04;
            const MemorySource source(flipped);
            const StatusOr<std::unique_ptr<SageDecoder>> opened =
                SageDecoder::tryOpen(source);
            if (!opened.ok())
                continue; // Rejected at parse: fine.
            SageDecoder &decoder = **opened;
            for (size_t c = 0; c < decoder.chunkCount(); c++) {
                const StatusOr<std::vector<Read>> chunk =
                    decoder.tryDecodeChunkShared(c);
                (void)chunk; // Ok or Status — both acceptable.
            }
        }
    }
}

TEST(CorruptArchive, TryOpenReportsMissingStreams)
{
    // An empty-but-well-framed bundle parses as a directory yet fails
    // archive open with a Corrupt "missing stream" status.
    const std::vector<uint8_t> empty_bundle = {0x00, 0x00, 0x00,
                                               0x00, 0x00};
    // varint stream count 0 + CRC32 trailer of the empty body.
    const MemorySource source(empty_bundle);
    const StatusOr<std::unique_ptr<SageDecoder>> opened =
        SageDecoder::tryOpen(source);
    ASSERT_FALSE(opened.ok());
}

// ---------------------------------------------------------------------
// Service degradation under faults
// ---------------------------------------------------------------------

/** Service over a fault-injected in-memory archive. The injector is
 *  disarmed for the constructor (archive open must see clean bytes)
 *  and armed afterwards. */
struct FaultedService
{
    explicit FaultedService(const std::vector<uint8_t> &bytes,
                            FaultConfig fault_config,
                            ServiceOptions options = {})
        : source(bytes), faulty(source, fault_config)
    {
        faulty.setArmed(false);
        options.ownedPoolThreads = 2;
        service = std::make_unique<SageArchiveService>(faulty, options);
        faulty.setArmed(true);
    }

    MemorySource source;
    FaultInjectionSource faulty;
    std::unique_ptr<SageArchiveService> service;
};

TEST(ServiceFault, ErrorIsPerRequestAndNeverPoisonsTheCache)
{
    const std::vector<uint8_t> bytes = makeArchiveBytes();
    FaultConfig fault_config;
    fault_config.failEveryN = 1; // Every armed decode read fails.
    ServiceOptions options;
    options.decodeRetries = 0;
    FaultedService harness(bytes, fault_config, options);
    SageArchiveService &service = *harness.service;
    ASSERT_GE(service.chunkCount(), 2u);

    // Affected request: clean Error with the decode's Status attached.
    const ReadResult failed = service.readChunk(0, RequestOptions{});
    EXPECT_EQ(failed.status, RequestStatus::Error);
    EXPECT_TRUE(failed.reads.empty());
    EXPECT_FALSE(failed.error.ok());
    EXPECT_EQ(failed.error.code(), StatusCode::IoError);

    // The failure left no poisoned cache entry: once the fault
    // clears, the same chunk decodes on the next request.
    harness.faulty.setArmed(false);
    const ReadResult recovered = service.readChunk(0, RequestOptions{});
    EXPECT_EQ(recovered.status, RequestStatus::Ok);
    EXPECT_FALSE(recovered.reads.empty());

    // Unaffected bytes are byte-identical to a clean decode.
    const MemorySource clean(bytes);
    SageReader reader(clean);
    const ReadSet expected = reader.decodeRange(0, 1);
    ASSERT_EQ(recovered.reads.size(), expected.reads.size());
    for (size_t i = 0; i < expected.reads.size(); i++)
        EXPECT_EQ(recovered.reads[i].bases, expected.reads[i].bases);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.errored, 1u);
    EXPECT_EQ(stats.ioErrors, 1u);
    EXPECT_EQ(stats.corruptChunks, 0u);
    EXPECT_EQ(stats.retries, 0u);
}

TEST(ServiceFault, ConcurrentRequestsAllSeeTheSharedError)
{
    const std::vector<uint8_t> bytes = makeArchiveBytes();
    FaultConfig fault_config;
    fault_config.failEveryN = 1;
    fault_config.latencyMicros = 200; // Widen the single-flight window.
    ServiceOptions options;
    options.decodeRetries = 0;
    FaultedService harness(bytes, fault_config, options);
    SageArchiveService &service = *harness.service;

    // Many clients pile onto the same failing chunk: every one must
    // complete with Error (leader or coalesced follower), and the
    // process must survive.
    constexpr int kClients = 8;
    std::atomic<int> errors{0};
    std::vector<std::thread> fleet;
    for (int c = 0; c < kClients; c++) {
        fleet.emplace_back([&service, &errors] {
            const ReadResult result =
                service.readChunk(0, RequestOptions{});
            if (result.status == RequestStatus::Error &&
                !result.error.ok())
                errors.fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (auto &client : fleet)
        client.join();
    EXPECT_EQ(errors.load(), kClients);
    EXPECT_EQ(service.stats().errored,
              static_cast<uint64_t>(kClients));

    // Recovery still works after the pile-up.
    harness.faulty.setArmed(false);
    EXPECT_EQ(service.readChunk(0, RequestOptions{}).status,
              RequestStatus::Ok);
}

TEST(ServiceFault, SessionsRetryPastNonStickyErrors)
{
    const std::vector<uint8_t> bytes = makeArchiveBytes();
    FaultConfig fault_config;
    fault_config.failEveryN = 1;
    ServiceOptions options;
    options.decodeRetries = 0;
    options.sessionReadahead = false; // Strictly on-demand walk.
    FaultedService harness(bytes, fault_config, options);
    SageArchiveService &service = *harness.service;

    ServiceSession session = service.openSession();
    ASSERT_TRUE(session.hasNext());
    EXPECT_TRUE(session.read(64).empty());
    EXPECT_EQ(session.lastStatus(), RequestStatus::Error);

    // Error is not sticky: the cursor is parked before the failed
    // chunk, and once the fault clears the same session resumes and
    // completes a full, correct walk.
    harness.faulty.setArmed(false);
    uint64_t delivered = 0;
    while (session.hasNext()) {
        const std::vector<Read> reads = session.read(1024);
        if (reads.empty() &&
            session.lastStatus() != RequestStatus::Ok)
            break;
        delivered += reads.size();
    }
    EXPECT_EQ(delivered, service.readCount());
}

TEST(ServiceFault, RetryAbsorbsTransientIoErrors)
{
    const std::vector<uint8_t> bytes = makeArchiveBytes();
    const MemorySource inner(bytes);

    ServiceOptions options;
    options.decodeRetries = 2;
    options.ownedPoolThreads = 2;

    // The source heals after one failure — exactly the transient
    // hiccup decodeRetries exists for. The request sees nothing.
    FlakySource flaky(inner, 0); // Clean during open ...
    SageArchiveService service(flaky, options);
    flaky.setFailures(1); // ... one hiccup before the first decode.

    const ReadResult result = service.readChunk(0, RequestOptions{});
    EXPECT_EQ(result.status, RequestStatus::Ok);
    EXPECT_FALSE(result.reads.empty());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.retries, 1u);
    EXPECT_EQ(stats.ioErrors, 0u);
    EXPECT_EQ(stats.corruptChunks, 0u);
    EXPECT_EQ(stats.errored, 0u);
}

} // namespace
} // namespace sage
