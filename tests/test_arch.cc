/**
 * @file
 * Tests for the architecture substrate: DRAM/SSD bandwidth models, FTL
 * layout invariants and GC, SAGe device commands, the hardware model
 * (Table 1), the GenStore ISF, and the pipeline flow-shop model.
 */

#include <gtest/gtest.h>

#include "accel/genstore.hh"
#include "accel/mappers.hh"
#include "dram/dram.hh"
#include "hw/sage_hw.hh"
#include "pipeline/pipeline.hh"
#include "simgen/synthesize.hh"
#include "ssd/device_array.hh"
#include "ssd/ftl.hh"
#include "ssd/nand.hh"
#include "ssd/sage_device.hh"
#include "core/sage.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

namespace sage {
namespace {

// ---------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------

TEST(Dram, HostBeatsSsdInternalBandwidth)
{
    const DramModel host = DramModel::hostDdr4();
    const DramModel internal = DramModel::ssdInternal();
    // Paper §3.2: host has 8 channels; SSD DRAM has one.
    EXPECT_GT(host.peakBandwidth(), internal.peakBandwidth() * 10);
}

TEST(Dram, RandomSlowerThanSequential)
{
    const DramModel model = DramModel::hostDdr4();
    EXPECT_GT(model.randomSeconds(1 << 30),
              model.sequentialSeconds(1 << 30));
}

TEST(Dram, EnergyScalesWithBusyTime)
{
    const DramModel model = DramModel::hostDdr4();
    EXPECT_GT(model.energyJoules(10.0, 5.0),
              model.energyJoules(10.0, 1.0));
}

// ---------------------------------------------------------------------
// SSD model
// ---------------------------------------------------------------------

TEST(Ssd, StripedBandwidthScalesWithChannels)
{
    const SsdModel ssd = SsdModel::pciePerformance();
    EXPECT_NEAR(ssd.internalReadBandwidth(),
                ssd.channelReadBandwidth() * ssd.config().channels,
                1.0);
    EXPECT_GT(ssd.internalReadBandwidth(),
              ssd.singleChannelReadBandwidth() * 7.9);
}

TEST(Ssd, PcieFasterThanSata)
{
    EXPECT_GT(SsdModel::pciePerformance().externalBandwidth(),
              SsdModel::sataCost().externalBandwidth() * 5);
}

TEST(Ssd, WriteSlowerThanRead)
{
    const SsdModel ssd = SsdModel::pciePerformance();
    EXPECT_GT(ssd.internalWriteSeconds(1 << 30),
              ssd.internalReadSeconds(1 << 30));
}

// ---------------------------------------------------------------------
// FTL
// ---------------------------------------------------------------------

NandConfig
tinyNand()
{
    NandConfig config;
    config.channels = 4;
    config.diesPerChannel = 1;
    config.planesPerDie = 1;
    config.pagesPerBlock = 8;
    config.blocksPerPlane = 32;
    return config;
}

TEST(Ftl, GenomicWritesStripeRoundRobin)
{
    SageFtl ftl(tinyNand());
    const uint64_t lpn = ftl.writeGenomic(16);
    for (uint64_t p = 0; p < 16; p++) {
        const auto ppa = ftl.translate(lpn + p);
        ASSERT_TRUE(ppa.has_value());
        EXPECT_EQ(ppa->channel, p % 4);
    }
    EXPECT_TRUE(ftl.genomicLayoutAligned());
}

TEST(Ftl, GenomicPagesShareOffsets)
{
    SageFtl ftl(tinyNand());
    ftl.writeGenomic(32);
    EXPECT_TRUE(ftl.genomicLayoutAligned());
    // Rows of 4 pages must share page offsets (multi-plane invariant).
    for (uint64_t row = 0; row < 8; row++) {
        const auto first = ftl.translate(row * 4);
        for (uint64_t ch = 1; ch < 4; ch++) {
            const auto ppa = ftl.translate(row * 4 + ch);
            ASSERT_TRUE(ppa.has_value());
            EXPECT_EQ(ppa->page, first->page) << "row " << row;
        }
    }
}

TEST(Ftl, NormalAndGenomicCoexist)
{
    SageFtl ftl(tinyNand());
    const uint64_t g = ftl.writeGenomic(8);
    const uint64_t n = ftl.writeNormal(8);
    EXPECT_TRUE(ftl.isGenomic(g));
    EXPECT_FALSE(ftl.isGenomic(n));
    EXPECT_TRUE(ftl.genomicLayoutAligned());
}

TEST(Ftl, TrimInvalidatesMappings)
{
    SageFtl ftl(tinyNand());
    const uint64_t lpn = ftl.writeGenomic(8);
    ftl.trim(lpn, 4);
    EXPECT_FALSE(ftl.translate(lpn).has_value());
    EXPECT_TRUE(ftl.translate(lpn + 4).has_value());
}

TEST(Ftl, GroupedGcPreservesAlignment)
{
    SageFtl ftl(tinyNand());
    // Fill several rows, punch holes, then force GC.
    const uint64_t a = ftl.writeGenomic(64);
    ftl.writeGenomic(64);
    ftl.trim(a, 64); // First object entirely dead.
    const unsigned before = ftl.minFreeBlocksPerChannel();
    ftl.collectGarbage(before + 2);
    EXPECT_GE(ftl.minFreeBlocksPerChannel(), before + 2);
    EXPECT_TRUE(ftl.genomicLayoutAligned());
    EXPECT_GT(ftl.stats().erases, 0u);
}

TEST(Ftl, GcRewritesSurvivingPages)
{
    SageFtl ftl(tinyNand());
    const uint64_t a = ftl.writeGenomic(32);
    // Kill every other row: survivors must be rewritten by GC.
    for (uint64_t p = 0; p < 32; p += 8)
        ftl.trim(a + p, 4);
    ftl.collectGarbage(ftl.minFreeBlocksPerChannel() + 1);
    EXPECT_TRUE(ftl.genomicLayoutAligned());
    for (uint64_t p = 4; p < 32; p += 8) {
        for (uint64_t i = 0; i < 4; i++)
            EXPECT_TRUE(ftl.translate(a + p + i).has_value());
    }
    EXPECT_GT(ftl.stats().gcWrites, 0u);
    EXPECT_GT(ftl.stats().writeAmplification(), 1.0);
}

// ---------------------------------------------------------------------
// SAGe device (interface commands)
// ---------------------------------------------------------------------

TEST(SageDevice, WriteThenReadRoundTrip)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);

    SageDevice device;
    device.sageWrite("rs", archive);
    EXPECT_EQ(device.fileBytes("rs"), archive.bytes.size());

    const SageReadResult result =
        device.sageRead("rs", OutputFormat::Ascii);
    ASSERT_EQ(result.packedReads.size(), ds.readSet.reads.size());
    EXPECT_GT(result.nandSeconds, 0.0);
    EXPECT_GT(result.linkSeconds, 0.0);
    EXPECT_EQ(result.compressedBytes, archive.bytes.size());
    EXPECT_GT(result.deliveredBytes, 0u);
    EXPECT_TRUE(device.ftl().genomicLayoutAligned());
}

TEST(SageDevice, InStorageModeShipsDecompressedBytes)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);

    SageDevice host_side(SsdModel::pciePerformance(),
                         SageIntegration::HostAttached);
    SageDevice in_storage(SsdModel::pciePerformance(),
                          SageIntegration::InStorage);
    host_side.sageWrite("rs", archive);
    in_storage.sageWrite("rs", archive);

    const auto host_result =
        host_side.sageRead("rs", OutputFormat::TwoBit);
    const auto ssd_result =
        in_storage.sageRead("rs", OutputFormat::TwoBit);
    // In-storage mode moves (larger) decompressed data over the link.
    EXPECT_GT(ssd_result.linkSeconds, host_result.linkSeconds);
}

TEST(SageDevice, ConventionalFilesWork)
{
    SageDevice device;
    std::vector<uint8_t> blob(100000, 0x5a);
    device.write("baseline.gz", blob);
    EXPECT_EQ(device.read("baseline.gz"), blob);
    EXPECT_GT(device.conventionalReadSeconds("baseline.gz"), 0.0);
    device.remove("baseline.gz");
}

TEST(SageDevice, ReadSurvivesRemove)
{
    // read() returns a copy, so the bytes stay valid after the file
    // is deleted (the old by-reference API dangled here).
    SageDevice device;
    const std::vector<uint8_t> blob(4096, 0x3c);
    device.write("f", blob);
    const std::vector<uint8_t> copy = device.read("f");
    device.remove("f");
    EXPECT_EQ(copy, blob);
}

TEST(SageDevice, ChunkExtentsCoverEveryChunk)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 200; // Several chunks.
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    SageDevice device;
    device.sageWrite("rs", archive);
    const auto extents = device.sageChunkExtents("rs");

    SageDecoder decoder(archive.bytes, /*dna_only=*/true);
    ASSERT_EQ(extents.size(), decoder.chunkCount());
    const auto chunk_bytes = decoder.chunkCompressedBytes();

    uint64_t prev_first = 0;
    for (size_t c = 0; c < extents.size(); c++) {
        EXPECT_EQ(extents[c].bytes, chunk_bytes[c]) << "chunk " << c;
        EXPECT_GT(extents[c].lpnCount, 0u);
        // The covering span stays inside the stored file's page range
        // (this archive is the only object, so hostWrites == its page
        // count) and advances with the chunk index.
        EXPECT_GE(extents[c].firstLpn, prev_first);
        EXPECT_LE(extents[c].firstLpn + extents[c].lpnCount,
                  device.ftl().stats().hostWrites);
        prev_first = extents[c].firstLpn;
        // Every page of the extent translates and sits in the genomic
        // striped zone.
        const auto ppas = device.ftl().translateRange(
            extents[c].firstLpn, extents[c].lpnCount);
        for (const auto &ppa : ppas)
            EXPECT_TRUE(ppa.has_value());
        EXPECT_GE(device.ftl().channelsSpanned(extents[c].firstLpn,
                                               extents[c].lpnCount),
                  1u);
    }
}

TEST(SageDevice, V1ArchiveReportsOneExtent)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 0;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    SageDevice device;
    device.sageWrite("rs", archive);
    const auto extents = device.sageChunkExtents("rs");
    ASSERT_EQ(extents.size(), 1u);
    EXPECT_GT(extents[0].bytes, 0u);
    EXPECT_GT(extents[0].lpnCount, 0u);
}

// ---------------------------------------------------------------------
// Multi-SSD device array (Fig. 15 mode)
// ---------------------------------------------------------------------

TEST(SageDeviceArray, StripedReadByteIdenticalToSingleDevice)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.chunkReads = 300;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    SageDevice single;
    single.sageWrite("rs", archive);
    const SageReadResult reference =
        single.sageRead("rs", OutputFormat::TwoBit);

    ThreadPool pool(3);
    for (unsigned n : {1u, 2u, 4u}) {
        SageDeviceArray array(n);
        array.sageWrite("rs", archive);
        EXPECT_EQ(array.fileBytes("rs"), archive.bytes.size());
        SageReadResult result =
            array.sageRead("rs", OutputFormat::TwoBit, &pool);
        // Acceptance bar: output byte-identical to the single-device
        // path, whatever the stripe width.
        EXPECT_EQ(result.packedReads, reference.packedReads)
            << n << " devices";
        EXPECT_EQ(result.compressedBytes, archive.bytes.size());
        // Every device's shard layout keeps the genomic invariant.
        for (unsigned d = 0; d < n; d++)
            EXPECT_TRUE(array.device(d).ftl().genomicLayoutAligned());
        array.remove("rs");
        for (unsigned d = 0; d < n; d++)
            EXPECT_TRUE(array.device(d).ftl().genomicLayoutAligned());
    }
}

TEST(SageDeviceArray, NandStreamingScalesWithDevices)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);

    SageDeviceArray one(1);
    SageDeviceArray four(4);
    one.sageWrite("rs", archive);
    four.sageWrite("rs", archive);
    const auto t1 = one.sageRead("rs", OutputFormat::TwoBit);
    const auto t4 = four.sageRead("rs", OutputFormat::TwoBit);
    // Four devices stream their shards concurrently; with page-sized
    // stripes the slowest shard is at most ~1/2 of the single-device
    // stream even for small archives.
    EXPECT_LT(t4.nandSeconds, t1.nandSeconds);
    EXPECT_LE(t4.linkSeconds, t1.linkSeconds);
}

// ---------------------------------------------------------------------
// Hardware model (Table 1)
// ---------------------------------------------------------------------

TEST(SageHw, Table1Totals)
{
    SageHwModel base;
    // Paper: 0.002 mm^2 and 0.49 mW for an 8-channel SSD.
    EXPECT_NEAR(base.totalAreaMm2(), 0.002, 0.002 * 0.4);
    EXPECT_NEAR(base.totalPowerMw(), 0.49, 0.49 * 0.05);

    SageHwConfig mode3;
    mode3.inStorageRegisters = true;
    SageHwModel in_storage(mode3);
    EXPECT_NEAR(in_storage.totalPowerMw(), 0.49 + 0.28,
                (0.49 + 0.28) * 0.05);
}

TEST(SageHw, TinyFractionOfControllerCores)
{
    SageHwModel hw;
    // Paper: 0.7% of the three SSD-controller cores.
    EXPECT_LT(hw.fractionOfControllerCores(), 0.02);
}

TEST(SageHw, NandBoundNotComputeBound)
{
    // Paper §8.2: throughput is bottlenecked by NAND read, not logic.
    SageHwModel hw;
    const SsdModel ssd = SsdModel::pciePerformance();
    const uint64_t compressed = 100 * kMiB;
    const uint64_t bases = 1600 * kMiB; // ~16x ratio.
    EXPECT_GT(ssd.internalReadSeconds(compressed) * 5,
              hw.computeSeconds(compressed, bases));
}

TEST(SageHw, EnergyTracksPowerAndTime)
{
    SageHwModel hw;
    EXPECT_NEAR(hw.energyJoules(10.0),
                hw.totalPowerMw() * 1e-3 * 10.0, 1e-12);
}

// ---------------------------------------------------------------------
// GenStore ISF
// ---------------------------------------------------------------------

TEST(Isf, ExactMatchesDetected)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    InStorageFilter isf(ds.donor); // Filter against the true genome.
    // A read cut straight from the donor matches exactly.
    EXPECT_TRUE(isf.matchesExactly(ds.donor.substr(1000, 150)));
    // Its reverse complement matches too.
    EXPECT_TRUE(isf.matchesExactly(
        reverseComplement(ds.donor.substr(5000, 150))));
}

TEST(Isf, MismatchedReadNotFiltered)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    InStorageFilter isf(ds.donor);
    std::string read = ds.donor.substr(2000, 150);
    read[75] = read[75] == 'A' ? 'C' : 'A';
    EXPECT_FALSE(isf.matchesExactly(read));
}

TEST(Isf, FiltersMeaningfulFractionOfCleanShortReads)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    InStorageFilter isf(ds.donor);
    const IsfResult result = isf.filter(ds.readSet);
    // Most short reads are error-free copies (Property 2).
    EXPECT_GT(result.filterFraction(), 0.3);
    EXPECT_LT(result.filterFraction(), 1.0);
    EXPECT_EQ(result.remainingBases(),
              result.totalBases - result.filteredBases);
}

TEST(Isf, FilterKeepsUpWithNand)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    InStorageFilter isf(ds.reference);
    const SsdModel ssd = SsdModel::pciePerformance();
    // Filtering packed reads should take about as long as streaming
    // them off NAND (GenStore's design point), not 10x longer.
    const double filter = isf.filterSeconds(ssd, 1000 * kMiB);
    const double stream = ssd.internalReadSeconds(250 * kMiB);
    EXPECT_LT(filter, stream * 2.0);
}

// ---------------------------------------------------------------------
// Pipeline model
// ---------------------------------------------------------------------

TEST(Pipeline, MakespanSingleStageIsSum)
{
    std::vector<std::vector<double>> t = {{1.0}, {2.0}, {3.0}};
    EXPECT_DOUBLE_EQ(pipelineMakespan(t), 6.0);
}

TEST(Pipeline, MakespanDominatedBySlowestStage)
{
    // 10 batches, stage times 1 and 5: makespan ~ 10*5 + fill.
    std::vector<std::vector<double>> t(10, {1.0, 5.0});
    const double makespan = pipelineMakespan(t);
    EXPECT_NEAR(makespan, 10 * 5.0 + 1.0, 1e-9);
}

TEST(Pipeline, MakespanBetweenBoundsRandom)
{
    Rng rng(123);
    std::vector<std::vector<double>> t(20,
                                       std::vector<double>(4, 0.0));
    double total = 0.0;
    std::vector<double> stage_sums(4, 0.0);
    for (auto &row : t) {
        for (size_t s = 0; s < 4; s++) {
            row[s] = rng.nextDouble();
            total += row[s];
            stage_sums[s] += row[s];
        }
    }
    const double makespan = pipelineMakespan(t);
    // Lower bound: any stage's total. Upper bound: everything serial.
    for (double s : stage_sums)
        EXPECT_GE(makespan + 1e-9, s);
    EXPECT_LE(makespan, total + 1e-9);
}

/** A synthetic workload with hand-set measurements. */
WorkloadMeasurement
syntheticWorkload()
{
    WorkloadMeasurement work;
    work.name = "synthetic";
    work.fastqBytes = 400 * kMiB;
    work.totalReads = 1'000'000;
    work.totalBases = 150'000'000;
    work.pigzBytes = 80 * kMiB;
    work.springBytes = 25 * kMiB;
    work.sageBytes = 26 * kMiB;
    work.sageDnaStreamBytes = 12 * kMiB;
    work.pigzDecompSeconds = 2.0;    // Serial gzip-class decode.
    work.springDecompSeconds = 0.9;
    work.springBackendSeconds = 0.5;
    work.sageSwDecompSeconds = 0.35;
    work.isfFilterFraction = 0.7;
    return work;
}

TEST(Pipeline, EndToEndOrderingMatchesPaper)
{
    const WorkloadMeasurement work = syntheticWorkload();
    SystemConfig system;
    system.mapper = gemAccelerator();

    const double pigz =
        evaluateEndToEnd(work, PrepConfig::Pigz, system).seconds;
    const double spr =
        evaluateEndToEnd(work, PrepConfig::NSpr, system).seconds;
    const double sprac =
        evaluateEndToEnd(work, PrepConfig::NSprAC, system).seconds;
    const double sage_sw =
        evaluateEndToEnd(work, PrepConfig::SageSW, system).seconds;
    const double sage_hw =
        evaluateEndToEnd(work, PrepConfig::SageHW, system).seconds;
    const double ideal =
        evaluateEndToEnd(work, PrepConfig::ZeroTimeDec, system).seconds;

    // Paper Fig. 13 ordering: pigz slowest, then (N)Spr, (N)SprAC,
    // SAGeSW; SAGe matches the ideal.
    EXPECT_GT(pigz, spr);
    EXPECT_GT(spr, sprac);
    EXPECT_GT(sprac, sage_hw);
    EXPECT_GE(sage_sw, sage_hw);
    EXPECT_NEAR(sage_hw, ideal, ideal * 0.05);
}

TEST(Pipeline, SharedConsumersCapSageSwPrepWithServeMeasurement)
{
    WorkloadMeasurement work = syntheticWorkload();
    SystemConfig system;
    system.mapper = gemAccelerator();
    // Private-pipeline projection would be 0.35 / 24 with the default
    // parallel factor; a faster measured serving figure must cap it
    // when consumers share the archive.
    work.sageSwServeSeconds = 0.002;
    work.sageSwServeClients = 4.0;

    const double solo =
        dataPrepSeconds(work, PrepConfig::SageSW, system);
    system.sharedConsumers = 16;
    const double shared =
        dataPrepSeconds(work, PrepConfig::SageSW, system);
    EXPECT_LT(shared, solo);

    // A slower serve measurement never worsens the projection, and
    // the cap only applies when consumers actually share the archive.
    work.sageSwServeSeconds = 10.0;
    EXPECT_DOUBLE_EQ(dataPrepSeconds(work, PrepConfig::SageSW, system),
                     solo);
    system.sharedConsumers = 1;
    work.sageSwServeSeconds = 0.002;
    EXPECT_DOUBLE_EQ(dataPrepSeconds(work, PrepConfig::SageSW, system),
                     solo);
    // Other configurations have no serving layer: unaffected.
    const double pigz =
        dataPrepSeconds(work, PrepConfig::Pigz, system);
    system.sharedConsumers = 16;
    EXPECT_DOUBLE_EQ(dataPrepSeconds(work, PrepConfig::Pigz, system),
                     pigz);
}

TEST(Pipeline, SageSsdWithIsfWinsWhenFilterIsStrong)
{
    const WorkloadMeasurement work = syntheticWorkload();
    SystemConfig plain;
    plain.mapper = gemAccelerator();
    SystemConfig isf = plain;
    isf.useIsf = true;

    const double sage_hw =
        evaluateEndToEnd(work, PrepConfig::SageHW, plain).seconds;
    const double sage_ssd_isf =
        evaluateEndToEnd(work, PrepConfig::SageSSD, isf).seconds;
    EXPECT_LT(sage_ssd_isf, sage_hw);
}

TEST(Pipeline, ZeroTimeDecCannotUseIsfCheaply)
{
    // Paper §8.1 observation 5: 0TimeDec + ISF requires moving data
    // into the SSD and back; SAGeSSD+ISF beats it.
    const WorkloadMeasurement work = syntheticWorkload();
    SystemConfig isf;
    isf.mapper = gemAccelerator();
    isf.useIsf = true;

    const double ideal_isf =
        evaluateEndToEnd(work, PrepConfig::ZeroTimeDec, isf).seconds;
    const double sage_ssd_isf =
        evaluateEndToEnd(work, PrepConfig::SageSSD, isf).seconds;
    EXPECT_LT(sage_ssd_isf, ideal_isf);
}

TEST(Pipeline, MoreSsdsHelpSage)
{
    const WorkloadMeasurement work = syntheticWorkload();
    SystemConfig one;
    one.mapper = gemAccelerator();
    one.useIsf = true;
    SystemConfig four = one;
    four.numSsds = 4;

    const double t1 =
        evaluateEndToEnd(work, PrepConfig::SageSSD, one).seconds;
    const double t4 =
        evaluateEndToEnd(work, PrepConfig::SageSSD, four).seconds;
    EXPECT_LE(t4, t1);
}

TEST(Pipeline, SataShiftsBottleneckToLink)
{
    const WorkloadMeasurement work = syntheticWorkload();
    SystemConfig pcie;
    pcie.mapper = gemAccelerator();
    SystemConfig sata = pcie;
    sata.ssd = SsdModel::sataCost();

    const double t_pcie =
        evaluateEndToEnd(work, PrepConfig::SageHW, pcie).seconds;
    const double t_sata =
        evaluateEndToEnd(work, PrepConfig::SageHW, sata).seconds;
    EXPECT_GT(t_sata, t_pcie);
}

TEST(Pipeline, EnergyOrderingMatchesPaper)
{
    const WorkloadMeasurement work = syntheticWorkload();
    SystemConfig system;
    system.mapper = gemAccelerator();

    const double e_pigz =
        evaluateEndToEnd(work, PrepConfig::Pigz, system).energy.total();
    const double e_spr =
        evaluateEndToEnd(work, PrepConfig::NSpr, system).energy.total();
    const double e_sage =
        evaluateEndToEnd(work, PrepConfig::SageHW, system)
            .energy.total();
    // Paper Fig. 16: SAGe ≫ (N)Spr ≫ pigz in energy reduction.
    EXPECT_GT(e_pigz, e_spr);
    EXPECT_GT(e_spr, e_sage);
}

TEST(Pipeline, DataPrepOnlyOrdering)
{
    const WorkloadMeasurement work = syntheticWorkload();
    SystemConfig system;
    system.mapper = gemAccelerator();
    // Paper Fig. 14: prep-only speedups are much larger than
    // end-to-end ones (mapping no longer hides anything).
    const double pigz =
        dataPrepSeconds(work, PrepConfig::Pigz, system);
    const double spr = dataPrepSeconds(work, PrepConfig::NSpr, system);
    const double sage = dataPrepSeconds(work, PrepConfig::SageHW,
                                        system);
    EXPECT_GT(pigz / sage, 10.0);
    EXPECT_GT(spr / sage, 2.0);
}

} // namespace
} // namespace sage
