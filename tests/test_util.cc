/**
 * @file
 * Unit tests for the util substrate: bit I/O, prefix codes, histograms,
 * CRC, varints, RNG distributions, tables and the thread pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <numeric>

#include "util/bitio.hh"
#include "util/crc32.hh"
#include "util/histogram.hh"
#include "util/prefix_code.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/varint.hh"

namespace sage {
namespace {

TEST(BitIo, SingleBitsRoundTrip)
{
    BitWriter bw;
    const std::vector<bool> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
    for (bool b : bits)
        bw.writeBit(b);
    const auto bytes = bw.take();
    BitReader br(bytes);
    for (bool b : bits)
        EXPECT_EQ(br.readBit(), b);
}

TEST(BitIo, MixedWidthFieldsRoundTrip)
{
    BitWriter bw;
    Rng rng(7);
    std::vector<std::pair<uint64_t, unsigned>> fields;
    for (int i = 0; i < 10000; i++) {
        const unsigned width = 1 + rng.nextBelow(57);
        const uint64_t value = rng.next() & ((uint64_t(1) << width) - 1);
        fields.emplace_back(value, width);
        bw.writeBits(value, width);
    }
    const auto bytes = bw.take();
    BitReader br(bytes);
    for (const auto &[value, width] : fields)
        ASSERT_EQ(br.readBits(width), value);
}

TEST(BitIo, UnaryCodes)
{
    BitWriter bw;
    for (unsigned n = 0; n < 20; n++)
        bw.writeUnary(n);
    const auto bytes = bw.take();
    BitReader br(bytes);
    for (unsigned n = 0; n < 20; n++)
        EXPECT_EQ(br.readUnary(), n);
}

TEST(BitIo, BitCountTracksWrites)
{
    BitWriter bw;
    bw.writeBits(5, 3);
    EXPECT_EQ(bw.bitCount(), 3u);
    bw.writeBits(1, 11);
    EXPECT_EQ(bw.bitCount(), 14u);
}

TEST(BitIo, ZeroWidthFieldIsNoop)
{
    BitWriter bw;
    bw.writeBits(0xff, 0);
    EXPECT_EQ(bw.bitCount(), 0u);
}

TEST(BitIo, AlignByte)
{
    BitWriter bw;
    bw.writeBit(true);
    bw.alignByte();
    EXPECT_EQ(bw.bitCount(), 8u);
    bw.writeBits(0xab, 8);
    const auto bytes = bw.take();
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[1], 0xab);
}

TEST(PrefixCode, RoundTripSkewed)
{
    std::vector<uint64_t> freqs = {1000, 500, 100, 50, 10, 5, 1, 1};
    const PrefixCode code = PrefixCode::fromFrequencies(freqs);
    BitWriter bw;
    std::vector<unsigned> symbols;
    Rng rng(3);
    for (int i = 0; i < 5000; i++) {
        const unsigned s = rng.nextWeighted(
            std::vector<double>(freqs.begin(), freqs.end()));
        symbols.push_back(s);
        code.encode(bw, s);
    }
    const auto bytes = bw.take();
    BitReader br(bytes);
    for (unsigned s : symbols)
        ASSERT_EQ(code.decode(br), s);
}

TEST(PrefixCode, FrequentSymbolsGetShorterCodes)
{
    std::vector<uint64_t> freqs = {1000, 10, 10, 10};
    const PrefixCode code = PrefixCode::fromFrequencies(freqs);
    EXPECT_LE(code.lengths()[0], code.lengths()[1]);
    EXPECT_LE(code.lengths()[0], code.lengths()[3]);
}

TEST(PrefixCode, SingleSymbolAlphabet)
{
    std::vector<uint64_t> freqs = {42};
    const PrefixCode code = PrefixCode::fromFrequencies(freqs);
    BitWriter bw;
    code.encode(bw, 0);
    code.encode(bw, 0);
    const auto bytes = bw.take();
    BitReader br(bytes);
    EXPECT_EQ(code.decode(br), 0u);
    EXPECT_EQ(code.decode(br), 0u);
}

TEST(PrefixCode, LengthsRebuildIdentically)
{
    std::vector<uint64_t> freqs(64);
    Rng rng(11);
    for (auto &f : freqs)
        f = rng.nextBelow(10000) + 1;
    const PrefixCode original = PrefixCode::fromFrequencies(freqs);
    const PrefixCode rebuilt = PrefixCode::fromLengths(original.lengths());

    BitWriter bw;
    for (unsigned s = 0; s < 64; s++)
        original.encode(bw, s);
    const auto bytes = bw.take();
    BitReader br(bytes);
    for (unsigned s = 0; s < 64; s++)
        ASSERT_EQ(rebuilt.decode(br), s);
}

TEST(PrefixCode, KraftInequalityHolds)
{
    std::vector<uint64_t> freqs(300);
    Rng rng(5);
    for (auto &f : freqs)
        f = 1 + rng.nextBelow(1u << 20);
    const PrefixCode code = PrefixCode::fromFrequencies(freqs);
    double kraft = 0;
    for (uint8_t len : code.lengths()) {
        ASSERT_LE(len, 15);
        if (len > 0)
            kraft += std::pow(2.0, -double(len));
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Crc32, KnownVector)
{
    // CRC-32 of "123456789" is the classic check value 0xCBF43926.
    const std::string s = "123456789";
    EXPECT_EQ(Crc32::of(reinterpret_cast<const uint8_t *>(s.data()),
                        s.size()),
              0xcbf43926u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::vector<uint8_t> data(1000);
    Rng rng(13);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.next());
    Crc32 crc;
    crc.update(data.data(), 400);
    crc.update(data.data() + 400, 600);
    EXPECT_EQ(crc.value(), Crc32::of(data));
}

TEST(Varint, RoundTripEdges)
{
    std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                    UINT32_MAX, UINT64_MAX};
    std::vector<uint8_t> buf;
    for (uint64_t v : values)
        putVarint(buf, v);
    size_t pos = 0;
    for (uint64_t v : values)
        EXPECT_EQ(getVarint(buf, pos), v);
    EXPECT_EQ(pos, buf.size());
}

TEST(Varint, ZigzagRoundTrip)
{
    for (int64_t v : {int64_t(0), int64_t(-1), int64_t(1),
                      int64_t(-1000000), int64_t(1000000),
                      INT64_MIN, INT64_MAX}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
    // Small magnitudes map to small codes.
    EXPECT_LT(zigzagEncode(-3), 8u);
}

TEST(Rng, Deterministic)
{
    Rng a(99), b(99);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBounds)
{
    Rng rng(1);
    for (int i = 0; i < 10000; i++) {
        const uint64_t v = rng.nextBelow(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, GeometricMeanApprox)
{
    Rng rng(2);
    const double p = 0.25;
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++)
        sum += static_cast<double>(rng.nextGeometric(p));
    const double mean = sum / n;
    // E[X] = (1-p)/p = 3.
    EXPECT_NEAR(mean, 3.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng rng(4);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++) {
        const double x = rng.nextNormal(5.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, WeightedPrefersHeavyBuckets)
{
    Rng rng(6);
    std::vector<double> w = {0.9, 0.05, 0.05};
    int heavy = 0;
    for (int i = 0; i < 10000; i++)
        heavy += rng.nextWeighted(w) == 0;
    EXPECT_GT(heavy, 8500);
}

TEST(Histogram, BasicCountsAndQuantiles)
{
    Histogram h;
    h.add(1, 50);
    h.add(2, 30);
    h.add(8, 20);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
    EXPECT_EQ(h.quantileKey(0.5), 1u);
    EXPECT_EQ(h.quantileKey(0.81), 8u);
    EXPECT_EQ(h.cumulative(2), 80u);
    EXPECT_NEAR(h.mean(), (50 * 1 + 30 * 2 + 20 * 8) / 100.0, 1e-9);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.count(5), 0u);
    EXPECT_DOUBLE_EQ(h.fraction(3), 0.0);
}

TEST(LatencyHistogram, QuantilesWithinBucketError)
{
    LatencyHistogram h;
    // 90 fast samples at ~1 ms, 10 slow at ~100 ms.
    for (int i = 0; i < 90; i++)
        h.record(0.001);
    for (int i = 0; i < 10; i++)
        h.record(0.100);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.meanSeconds(), (90 * 0.001 + 10 * 0.100) / 100.0,
                1e-9);
    EXPECT_DOUBLE_EQ(h.maxSeconds(), 0.100);
    // Log-spaced buckets: quantiles land at a bucket upper edge, never
    // more than ~25% above the true value, never below it.
    EXPECT_GE(h.quantileSeconds(0.50), 0.001);
    EXPECT_LE(h.quantileSeconds(0.50), 0.00130);
    EXPECT_GE(h.quantileSeconds(0.99), 0.100);
    EXPECT_LE(h.quantileSeconds(0.99), 0.130);
    EXPECT_LE(h.quantileSeconds(0.50), h.quantileSeconds(0.99));
}

TEST(LatencyHistogram, EmptyZeroAndExtremeSamplesAreSafe)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantileSeconds(0.99), 0.0);
    EXPECT_DOUBLE_EQ(h.meanSeconds(), 0.0);

    h.record(0.0);
    h.record(-1.0);         // Clamped to zero.
    h.record(1e-9);         // Sub-microsecond.
    h.record(500.0);        // Beyond the top octave: overflow bucket.
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.maxSeconds(), 500.0);
    // Overflow-bucket quantiles report the exact max (the bucket has
    // no upper edge), preserving the never-underreport guarantee.
    EXPECT_DOUBLE_EQ(h.quantileSeconds(1.0), 500.0);
}

TEST(LatencyHistogram, MergeAccumulates)
{
    LatencyHistogram a, b;
    for (int i = 0; i < 50; i++)
        a.record(0.002);
    for (int i = 0; i < 50; i++)
        b.record(0.050);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_DOUBLE_EQ(a.maxSeconds(), 0.050);
    EXPECT_GE(a.quantileSeconds(0.99), 0.050);
    EXPECT_NEAR(a.meanSeconds(), (50 * 0.002 + 50 * 0.050) / 100.0,
                1e-9);
}

TEST(ThreadPool, ParallelForCoversAll)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](size_t i) { hits[i]++; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitDrainsAllTasks)
{
    ThreadPool pool(8);
    std::atomic<int> counter{0};
    for (int i = 0; i < 500; i++)
        pool.submit([&] { counter++; });
    pool.wait();
    EXPECT_EQ(counter.load(), 500);
}

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::timesFactor(2.5, 1), "2.5x");
    EXPECT_EQ(TextTable::percent(0.123, 1), "12.3%");
}

} // namespace
} // namespace sage
