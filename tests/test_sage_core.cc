/**
 * @file
 * Tests for the SAGe core: Algorithm 1 tuning, tuned arrays, and full
 * compress/decompress losslessness across optimization levels,
 * technologies and corner cases.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/rng.hh"

namespace sage {
namespace {

// ---------------------------------------------------------------------
// Algorithm 1 / tuned arrays
// ---------------------------------------------------------------------

TEST(Tuner, SingleClassForUniformWidths)
{
    Histogram hist;
    hist.add(4, 1000); // Every value needs exactly 4 bits.
    const AssociationTable table = tuneBitCounts(hist);
    ASSERT_EQ(table.widthByRank.size(), 1u);
    EXPECT_EQ(table.widthByRank[0], 4);
}

TEST(Tuner, SplitsSkewedDistribution)
{
    // Paper Property 1: most deltas tiny, rare ones large. The tuner
    // should not charge 16 bits to every value.
    Histogram hist;
    hist.add(2, 100000);
    hist.add(16, 100);
    const AssociationTable table = tuneBitCounts(hist);
    ASSERT_GE(table.widthByRank.size(), 2u);
    // Most frequent class (rank 0) must be the narrow one.
    EXPECT_EQ(table.widthByRank[0], 2);
}

TEST(Tuner, CostBeatsFixedWidth)
{
    Histogram hist;
    Rng rng(21);
    std::vector<uint64_t> values;
    for (int i = 0; i < 50000; i++) {
        // Geometric-ish deltas with a heavy tail.
        uint64_t v = rng.nextGeometric(0.4);
        if (rng.nextBool(0.01))
            v += rng.nextBelow(1 << 14);
        values.push_back(v);
        hist.add(valueBits(v));
    }
    const AssociationTable table = tuneBitCounts(hist);
    const TunedFieldCodec codec(table);
    uint64_t tuned_bits = 0;
    unsigned max_bits = 0;
    for (uint64_t v : values) {
        tuned_bits += codec.costBits(v);
        max_bits = std::max(max_bits, valueBits(v));
    }
    const uint64_t fixed_bits =
        static_cast<uint64_t>(values.size()) * max_bits;
    EXPECT_LT(tuned_bits, fixed_bits);
}

TEST(Tuner, RespectsMaxClasses)
{
    Histogram hist;
    for (unsigned b = 1; b <= 20; b++)
        hist.add(b, 1000 >> (b / 4));
    TunerConfig config;
    config.maxClasses = 3;
    config.epsilon = 0.0; // Force the full search up to maxClasses.
    const AssociationTable table = tuneBitCounts(hist, config);
    EXPECT_LE(table.widthByRank.size(), 3u);
}

TEST(TunedArray, RoundTripRandomValues)
{
    Rng rng(8);
    std::vector<uint64_t> values;
    for (int i = 0; i < 20000; i++)
        values.push_back(rng.nextGeometric(0.3));
    const AssociationTable table = TunedFieldCodec::tuneFor(values);
    TunedArrayEncoder enc(table);
    for (uint64_t v : values)
        enc.append(v);
    auto array = enc.takeArray();
    auto guide = enc.takeGuide();
    TunedArrayDecoder dec(table, BitReader(array), BitReader(guide));
    for (uint64_t v : values)
        ASSERT_EQ(dec.next(), v);
}

TEST(TunedArray, AssociationTableSerialization)
{
    AssociationTable table;
    table.widthByRank = {2, 4, 8, 17};
    std::vector<uint8_t> buf;
    table.serialize(buf);
    size_t pos = 0;
    const AssociationTable back =
        AssociationTable::deserialize(buf, pos);
    EXPECT_EQ(back, table);
    EXPECT_EQ(pos, buf.size());
}

TEST(TunedArray, GuideUsesShortCodesForCommonClass)
{
    // 90% of values need 3 bits, 10% need 12: rank 0 must be width 3.
    std::vector<uint64_t> values;
    Rng rng(31);
    for (int i = 0; i < 10000; i++)
        values.push_back(rng.nextBool(0.9) ? 5 : 3000);
    const AssociationTable table = TunedFieldCodec::tuneFor(values);
    EXPECT_EQ(table.widthByRank[0], valueBits(5));
}

// ---------------------------------------------------------------------
// SAGe parameters header
// ---------------------------------------------------------------------

TEST(SageParams, HeaderRoundTrip)
{
    SageParams params;
    params.numReads = 12345;
    params.consensusLength = 999999;
    params.consensusTwoBit = false;
    params.hasQuality = true;
    params.reorderReads = false;
    params.maxSegments = 3;
    params.modalReadLength = 151;
    params.matchPos.widthByRank = {3, 9};
    params.readLen.widthByRank = {1};
    params.mismatchCount.widthByRank = {2, 5, 9};
    params.mismatchPos.widthByRank = {4};
    params.segPos.widthByRank = {20};
    params.segLen.widthByRank = {12};

    const SageParams back =
        SageParams::deserialize(params.serialize());
    EXPECT_EQ(back.numReads, params.numReads);
    EXPECT_EQ(back.consensusLength, params.consensusLength);
    EXPECT_EQ(back.consensusTwoBit, params.consensusTwoBit);
    EXPECT_EQ(back.hasQuality, params.hasQuality);
    EXPECT_EQ(back.reorderReads, params.reorderReads);
    EXPECT_EQ(back.maxSegments, params.maxSegments);
    EXPECT_EQ(back.modalReadLength, params.modalReadLength);
    EXPECT_EQ(back.matchPos, params.matchPos);
    EXPECT_EQ(back.mismatchCount, params.mismatchCount);
}

// ---------------------------------------------------------------------
// End-to-end losslessness
// ---------------------------------------------------------------------

/** Sorted multiset view of (bases, quals) records. */
std::multiset<std::pair<std::string, std::string>>
recordSet(const ReadSet &rs)
{
    std::multiset<std::pair<std::string, std::string>> set;
    for (const auto &read : rs.reads)
        set.emplace(read.bases, read.quals);
    return set;
}

class SageRoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SageRoundTrip, ShortReadsLosslessAtEveryLevel)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config = SageConfig::atLevel(GetParam());
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    const ReadSet back = sageDecompress(archive.bytes);
    ASSERT_EQ(back.reads.size(), ds.readSet.reads.size());
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

TEST_P(SageRoundTrip, LongReadsLosslessAtEveryLevel)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    SageConfig config = SageConfig::atLevel(GetParam());
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    const ReadSet back = sageDecompress(archive.bytes);
    ASSERT_EQ(back.reads.size(), ds.readSet.reads.size());
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

INSTANTIATE_TEST_SUITE_P(OptimizationLevels, SageRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u));

TEST(SageRoundTripExtra, PreserveOrderRestoresExactSequence)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.preserveOrder = true;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    const ReadSet back = sageDecompress(archive.bytes);
    ASSERT_EQ(back.reads.size(), ds.readSet.reads.size());
    for (size_t i = 0; i < back.reads.size(); i++) {
        EXPECT_EQ(back.reads[i].bases, ds.readSet.reads[i].bases);
        EXPECT_EQ(back.reads[i].quals, ds.readSet.reads[i].quals);
        EXPECT_EQ(back.reads[i].header, ds.readSet.reads[i].header);
    }
}

TEST(SageRoundTripExtra, QualityCanBeDropped)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    SageConfig config;
    config.keepQuality = false;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);
    EXPECT_EQ(archive.qualityBytes, 0u);
    const ReadSet back = sageDecompress(archive.bytes);
    for (const auto &read : back.reads)
        EXPECT_TRUE(read.quals.empty());
}

TEST(SageRoundTripExtra, ReadsWithNSurvive)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.sequencer.nReadProb = 0.2; // Force many N-containing reads.
    const SimulatedDataset ds = synthesizeDataset(spec);
    bool any_n = false;
    for (const auto &read : ds.readSet.reads)
        any_n |= read.bases.find('N') != std::string::npos;
    ASSERT_TRUE(any_n) << "spec should have produced N reads";

    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    const ReadSet back = sageDecompress(archive.bytes);
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

TEST(SageRoundTripExtra, ClippedReadsSurvive)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.sequencer.clipProb = 0.3;
    const SimulatedDataset ds = synthesizeDataset(spec);
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    const ReadSet back = sageDecompress(archive.bytes);
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

TEST(SageRoundTripExtra, ChimericLongReadsSurvive)
{
    DatasetSpec spec = makeTinySpec(true);
    spec.sequencer.chimeraProb = 0.5;
    const SimulatedDataset ds = synthesizeDataset(spec);
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    const ReadSet back = sageDecompress(archive.bytes);
    EXPECT_EQ(recordSet(back), recordSet(ds.readSet));
}

TEST(SageRoundTripExtra, EmptyReadSet)
{
    ReadSet rs;
    rs.name = "empty";
    const std::string consensus(1000, 'A');
    const SageArchive archive = sageCompress(rs, consensus);
    const ReadSet back = sageDecompress(archive.bytes);
    EXPECT_TRUE(back.reads.empty());
}

TEST(SageRoundTripExtra, PackedOutputFormats)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);

    SageDecoder ascii_dec(archive.bytes);
    const auto ascii = ascii_dec.decodeAllPacked(OutputFormat::Ascii);
    SageDecoder two_dec(archive.bytes);
    const auto twobit = two_dec.decodeAllPacked(OutputFormat::TwoBit);
    ASSERT_EQ(ascii.size(), twobit.size());

    // Cross-check: unpacking 2-bit must equal the ASCII bases when the
    // read is ACGT-only.
    for (size_t i = 0; i < ascii.size(); i++) {
        const std::string bases(ascii[i].begin(), ascii[i].end());
        if (bases.find('N') == std::string::npos) {
            EXPECT_EQ(unpackSequence(twobit[i], bases.size(),
                                     OutputFormat::TwoBit),
                      bases);
        }
    }
}

TEST(SageRoundTripExtra, CompressionBeatsTwoBitPacking)
{
    // With redundant sampling (depth > 4), SAGe must beat the trivial
    // 2 bits/base floor on DNA.
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0;
    const SimulatedDataset ds = synthesizeDataset(spec);
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    const double dna_ratio =
        static_cast<double>(ds.readSet.dnaBytes())
        / static_cast<double>(archive.dnaBytes);
    EXPECT_GT(dna_ratio, 4.0) << "consensus encoding should beat 4x";
}

TEST(SageRoundTripExtra, HigherLevelsNeverLargerDna)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    double prev = 1e30;
    for (unsigned level = 0; level <= 4; level++) {
        SageConfig config = SageConfig::atLevel(level);
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config);
        // Allow 2% slack: O3 can trade position bytes for base bytes.
        EXPECT_LT(static_cast<double>(archive.dnaBytes), prev * 1.02)
            << "level " << level;
        prev = static_cast<double>(archive.dnaBytes);
    }
}

TEST(SageDecoderInfo, StreamSizesAndWorkingSet)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    SageDecoder decoder(archive.bytes);
    const ArchiveInfo &info = decoder.info();
    EXPECT_EQ(info.params.numReads, ds.readSet.reads.size());
    EXPECT_GT(info.dnaStreamBytes(), 0u);
    EXPECT_LE(info.dnaStreamBytes(), archive.bytes.size());
    // SW working set ~ consensus; tiny relative to Spring-class tools.
    EXPECT_LT(decoder.workingSetBytes(),
              ds.reference.size() + 4096);
}

TEST(SageStreaming, NextYieldsSameAsDecodeAll)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    SageDecoder a(archive.bytes), b(archive.bytes);
    const ReadSet all = b.decodeAll();
    size_t i = 0;
    while (a.hasNext()) {
        const Read read = a.next();
        ASSERT_LT(i, all.reads.size());
        EXPECT_EQ(read.bases, all.reads[i].bases);
        i++;
    }
    EXPECT_EQ(i, all.reads.size());
}

} // namespace
} // namespace sage
