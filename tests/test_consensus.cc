/**
 * @file
 * Tests for the consensus substrate: banded alignment, edit-script
 * reconstruction exactness, the minimizer index, and the mapper
 * (including chimeric split mapping and property analyses).
 */

#include <gtest/gtest.h>

#include "consensus/align.hh"
#include "consensus/index.hh"
#include "consensus/mapper.hh"
#include "consensus/stats.hh"
#include "genomics/alphabet.hh"
#include "simgen/synthesize.hh"
#include "util/rng.hh"

namespace sage {
namespace {

std::string
randomSeq(Rng &rng, size_t len)
{
    std::string s;
    for (size_t i = 0; i < len; i++)
        s.push_back(codeToBase(static_cast<uint8_t>(rng.nextBelow(4))));
    return s;
}

// ---------------------------------------------------------------------
// Banded alignment
// ---------------------------------------------------------------------

TEST(BandedAlign, IdenticalStringsZeroEdits)
{
    const std::string s = "ACGTACGTAAACCC";
    const auto result = bandedAlign(s, s, 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->editDistance, 0u);
    EXPECT_TRUE(result->ops.empty());
}

TEST(BandedAlign, SingleSubstitution)
{
    const std::string t = "ACGTACGTAAACCC";
    std::string q = t;
    q[5] = 'A'; // was C
    const auto result = bandedAlign(t, q, 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->editDistance, 1u);
    ASSERT_EQ(result->ops.size(), 1u);
    EXPECT_EQ(result->ops[0].type, EditType::Sub);
    EXPECT_EQ(result->ops[0].readPos, 5u);
    EXPECT_EQ(result->ops[0].bases, "A");
}

TEST(BandedAlign, InsertionBlockMerged)
{
    const std::string t = "ACGTACGTACGT";
    const std::string q = "ACGTAGGGCGTACGT"; // GGG inserted at 5.
    const auto result = bandedAlign(t, q, 6);
    ASSERT_TRUE(result.has_value());
    // Unit-cost edit distance is 3 (three inserted bases).
    EXPECT_EQ(result->editDistance, 3u);
    // Blocks must be merged into one op.
    size_t ins_ops = 0;
    for (const auto &op : result->ops)
        ins_ops += op.type == EditType::Ins;
    EXPECT_EQ(ins_ops, 1u);
}

TEST(BandedAlign, DeletionBlockMerged)
{
    const std::string t = "ACGTAGGGCGTACGT";
    const std::string q = "ACGTACGTACGT";
    const auto result = bandedAlign(t, q, 6);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->editDistance, 3u);
    size_t del_ops = 0;
    for (const auto &op : result->ops) {
        if (op.type == EditType::Del) {
            del_ops++;
            EXPECT_EQ(op.length, 3u);
        }
    }
    EXPECT_EQ(del_ops, 1u);
}

TEST(BandedAlign, NarrowBandCostsMoreThanWideBand)
{
    // The band corridor always reaches the terminal corner (it includes
    // the length difference), so narrow bands degrade cost rather than
    // fail. A true shift-by-8 alignment needs band >= 8 to see the
    // optimal 16-edit solution (8 del + 8 ins).
    const std::string t = "AAAAAAAACGCGCGCGCGCGACGACG";
    const std::string q = "CGCGCGCGCGCGACGACGTTTTTTTT";
    const auto narrow = bandedDistance(t, q, 1);
    const auto wide = bandedDistance(t, q, 12);
    ASSERT_TRUE(narrow.has_value());
    ASSERT_TRUE(wide.has_value());
    EXPECT_GT(*narrow, *wide);
}

/** Property: reconstruction from an alignment is always exact. */
TEST(BandedAlign, ReconstructionExactUnderRandomEdits)
{
    Rng rng(77);
    for (int trial = 0; trial < 200; trial++) {
        const std::string target = randomSeq(rng, 150 + rng.nextBelow(200));
        // Mutate the target into the query.
        std::string query;
        for (char c : target) {
            const double roll = rng.nextDouble();
            if (roll < 0.02) {
                continue; // deletion
            } else if (roll < 0.04) {
                query.push_back(codeToBase(
                    static_cast<uint8_t>(rng.nextBelow(4))));
                query.push_back(c); // insertion
            } else if (roll < 0.07) {
                uint8_t nc = static_cast<uint8_t>(rng.nextBelow(4));
                query.push_back(codeToBase(nc)); // substitution (maybe id)
            } else {
                query.push_back(c);
            }
        }
        if (query.empty())
            continue;
        const auto result = bandedAlign(target, query, 32);
        ASSERT_TRUE(result.has_value()) << "trial " << trial;

        AlignedSegment seg;
        seg.consensusPos = 0;
        seg.readStart = 0;
        seg.readLength = static_cast<uint32_t>(query.size());
        seg.ops = result->ops;
        EXPECT_EQ(reconstructSegment(target, seg), query)
            << "trial " << trial;
    }
}

TEST(BandedAlign, NInQueryBecomesExplicitEdit)
{
    const std::string t = "ACGTACGTACGT";
    std::string q = t;
    q[4] = 'N';
    const auto result = bandedAlign(t, q, 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_GE(result->editDistance, 1u);
    AlignedSegment seg;
    seg.readLength = static_cast<uint32_t>(q.size());
    seg.ops = result->ops;
    EXPECT_EQ(reconstructSegment(t, seg), q);
}

// ---------------------------------------------------------------------
// Edit scripts
// ---------------------------------------------------------------------

TEST(Edits, ReconstructWithExplicitOps)
{
    const std::string consensus = "AAAACCCCGGGGTTTT";
    AlignedSegment seg;
    seg.consensusPos = 4;
    seg.readStart = 0;
    seg.readLength = 8;
    // Read = consensus[4..12) with a substitution at read pos 2.
    EditOp sub;
    sub.readPos = 2;
    sub.type = EditType::Sub;
    sub.bases = "T";
    seg.ops.push_back(sub);
    EXPECT_EQ(reconstructSegment(consensus, seg), "CCTCGGGG");
}

TEST(Edits, DeletionSkipsConsensus)
{
    const std::string consensus = "ACGTACGTACGT";
    AlignedSegment seg;
    seg.consensusPos = 0;
    seg.readLength = 8;
    EditOp del;
    del.readPos = 4;
    del.type = EditType::Del;
    del.length = 4;
    seg.ops.push_back(del);
    EXPECT_EQ(reconstructSegment(consensus, seg), "ACGTACGT");
}

TEST(Edits, StoredBaseCount)
{
    std::vector<EditOp> ops(2);
    ops[0].type = EditType::Sub;
    ops[0].bases = "A";
    ops[1].type = EditType::Ins;
    ops[1].length = 3;
    ops[1].bases = "ACG";
    EXPECT_EQ(storedBaseCount(ops), 4u);
}

// ---------------------------------------------------------------------
// Minimizer index
// ---------------------------------------------------------------------

TEST(Index, LookupFindsPlantedKmer)
{
    Rng rng(55);
    std::string consensus = randomSeq(rng, 20000);
    IndexConfig config;
    MinimizerIndex index(consensus, config);
    EXPECT_GT(index.distinctSeeds(), 100u);
    // Every stored position must actually hold the k-mer.
    const auto minimizers =
        extractMinimizers(consensus, config.k, config.w);
    for (size_t i = 0; i < std::min<size_t>(minimizers.size(), 50); i++) {
        const auto &positions = index.lookup(minimizers[i].kmer);
        bool found = false;
        for (uint32_t pos : positions)
            found |= pos == minimizers[i].pos;
        EXPECT_TRUE(found);
    }
}

TEST(Index, MasksRepetitiveSeeds)
{
    // Highly repetitive sequence: the repeated seed must be masked.
    std::string consensus;
    for (int i = 0; i < 3000; i++)
        consensus += "ACGTACGTAC";
    IndexConfig config;
    config.maxOccurrence = 16;
    MinimizerIndex index(consensus, config);
    for (const auto &hit : extractMinimizers(consensus, config.k,
                                             config.w)) {
        EXPECT_LE(index.lookup(hit.kmer).size(), config.maxOccurrence);
    }
}

// ---------------------------------------------------------------------
// Mapper
// ---------------------------------------------------------------------

TEST(Mapper, ExactSubstringMapsWithZeroEdits)
{
    Rng rng(66);
    const std::string consensus = randomSeq(rng, 50000);
    ConsensusMapper mapper(consensus);
    const std::string read = consensus.substr(12345, 150);
    const ReadMapping mapping = mapper.mapSequence(read);
    ASSERT_TRUE(mapping.mapped);
    EXPECT_FALSE(mapping.reverse);
    EXPECT_EQ(mapping.totalEdits(), 0u);
    EXPECT_EQ(mapping.primaryPosition(), 12345u);
    EXPECT_EQ(reconstructRead(consensus, mapping), read);
}

TEST(Mapper, ReverseStrandDetected)
{
    Rng rng(67);
    const std::string consensus = randomSeq(rng, 50000);
    ConsensusMapper mapper(consensus);
    const std::string read =
        reverseComplement(consensus.substr(30000, 150));
    const ReadMapping mapping = mapper.mapSequence(read);
    ASSERT_TRUE(mapping.mapped);
    EXPECT_TRUE(mapping.reverse);
    // Oriented reconstruction must equal rc(read).
    EXPECT_EQ(reconstructRead(consensus, mapping),
              reverseComplement(read));
}

TEST(Mapper, RejectsForeignSequence)
{
    Rng rng(68);
    const std::string consensus = randomSeq(rng, 50000);
    ConsensusMapper mapper(consensus);
    Rng other(999);
    const std::string junk = randomSeq(other, 150);
    const ReadMapping mapping = mapper.mapSequence(junk);
    EXPECT_FALSE(mapping.mapped);
}

TEST(Mapper, ChimericReadGetsMultipleSegments)
{
    Rng rng(69);
    const std::string consensus = randomSeq(rng, 80000);
    MapperConfig config;
    config.maxSegments = 3;
    ConsensusMapper mapper(consensus, config);
    // Join two distant loci (Property 4).
    const std::string read =
        consensus.substr(5000, 900) + consensus.substr(60000, 900);
    const ReadMapping mapping = mapper.mapSequence(read);
    ASSERT_TRUE(mapping.mapped);
    EXPECT_EQ(mapping.segments.size(), 2u);
    EXPECT_EQ(reconstructRead(consensus, mapping), read);
}

TEST(Mapper, SingleSegmentModeStillReconstructs)
{
    Rng rng(70);
    const std::string consensus = randomSeq(rng, 80000);
    MapperConfig config;
    config.maxSegments = 1;
    config.maxEditFraction = 0.8;
    ConsensusMapper mapper(consensus, config);
    const std::string read =
        consensus.substr(5000, 900) + consensus.substr(60000, 900);
    const ReadMapping mapping = mapper.mapSequence(read);
    if (mapping.mapped) {
        EXPECT_EQ(mapping.segments.size(), 1u);
        EXPECT_EQ(reconstructRead(consensus, mapping), read);
    }
}

TEST(Mapper, MapAllReconstructsSimulatedShortReads)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet);
    const MappingStats stats =
        ConsensusMapper::summarize(mappings, ds.readSet);
    // Nearly everything should map against the same-species reference.
    EXPECT_GT(stats.mappedReads, stats.totalReads * 95 / 100);
    for (size_t i = 0; i < mappings.size(); i++) {
        if (!mappings[i].mapped)
            continue;
        const std::string oriented = mappings[i].reverse
            ? reverseComplement(ds.readSet.reads[i].bases)
            : ds.readSet.reads[i].bases;
        ASSERT_EQ(reconstructRead(ds.reference, mappings[i]), oriented)
            << "read " << i;
    }
}

TEST(Mapper, MapAllReconstructsSimulatedLongReads)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet);
    const MappingStats stats =
        ConsensusMapper::summarize(mappings, ds.readSet);
    EXPECT_GT(stats.mappedReads, stats.totalReads * 80 / 100);
    for (size_t i = 0; i < mappings.size(); i++) {
        if (!mappings[i].mapped)
            continue;
        const std::string oriented = mappings[i].reverse
            ? reverseComplement(ds.readSet.reads[i].bases)
            : ds.readSet.reads[i].bases;
        ASSERT_EQ(reconstructRead(ds.reference, mappings[i]), oriented)
            << "read " << i;
    }
}

// ---------------------------------------------------------------------
// Property analyses (Fig. 7 / Fig. 10 inputs)
// ---------------------------------------------------------------------

TEST(PropertyStats, ShortReadsMostlyZeroMismatches)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet);
    const PropertyStats stats = analyzeProperties(mappings);
    // Property 2: bucket 0 dominates mismatch counts per read.
    EXPECT_GT(stats.mismatchCountPerRead.fraction(0), 0.3);
    // Property 5: substitutions dominate short-read mismatch events.
    EXPECT_GT(stats.substitutionFraction, 0.8);
}

TEST(PropertyStats, MatchingPositionDeltasAreSmall)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0; // Dense sampling.
    const SimulatedDataset ds = synthesizeDataset(spec);
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet);
    const PropertyStats stats = analyzeProperties(mappings);
    // Property 6: after reordering, most deltas need few bits.
    const auto &hist = stats.matchingPosDeltaBits;
    uint64_t small = 0;
    for (unsigned b = 0; b <= 6; b++)
        small += hist.count(b);
    EXPECT_GT(static_cast<double>(small) / hist.total(), 0.8);
}

TEST(PropertyStats, LongReadIndelBlocksSkewedToOne)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet);
    const PropertyStats stats = analyzeProperties(mappings);
    // Property 3: most indel blocks have length 1...
    EXPECT_GT(stats.indelBlockLength.fraction(1), 0.5);
}

} // namespace
} // namespace sage
