/**
 * @file
 * Tests for the recoverable error model (util/status.hh): Status
 * codes and factories, StatusOr value/error duality and implicit
 * conversions, StatusError as the deep-internals carrier, and the
 * sage_check_data macro that turns data-dependent violations into
 * StatusError instead of process death.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "util/status.hh"

namespace sage {
namespace {

// ---------------------------------------------------------------------
// Status
// ---------------------------------------------------------------------

TEST(Status, DefaultIsOk)
{
    const Status status;
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::Ok);
    EXPECT_EQ(status.message(), "");
    EXPECT_EQ(status.toString(), "ok");
}

TEST(Status, FactoriesCarryCodeAndConcatenatedMessage)
{
    const Status io = Status::ioError("read of ", 42, " bytes failed");
    EXPECT_FALSE(io.ok());
    EXPECT_EQ(io.code(), StatusCode::IoError);
    EXPECT_EQ(io.message(), "read of 42 bytes failed");
    EXPECT_EQ(io.toString(), "io-error: read of 42 bytes failed");

    EXPECT_EQ(Status::truncated("x").code(), StatusCode::Truncated);
    EXPECT_EQ(Status::corrupt("x").code(), StatusCode::Corrupt);
    EXPECT_EQ(Status::outOfRange("x").code(), StatusCode::OutOfRange);
    EXPECT_EQ(Status::exhausted("x").code(), StatusCode::Exhausted);
}

TEST(Status, CodeNamesAreStable)
{
    EXPECT_STREQ(statusCodeName(StatusCode::Ok), "ok");
    EXPECT_STREQ(statusCodeName(StatusCode::IoError), "io-error");
    EXPECT_STREQ(statusCodeName(StatusCode::Truncated), "truncated");
    EXPECT_STREQ(statusCodeName(StatusCode::Corrupt), "corrupt");
    EXPECT_STREQ(statusCodeName(StatusCode::OutOfRange),
                 "out-of-range");
    EXPECT_STREQ(statusCodeName(StatusCode::Exhausted), "exhausted");
}

// ---------------------------------------------------------------------
// StatusError
// ---------------------------------------------------------------------

TEST(StatusError, CarriesStatusAndMessage)
{
    const StatusError err(Status::corrupt("bad magic"));
    EXPECT_EQ(err.status().code(), StatusCode::Corrupt);
    EXPECT_STREQ(err.what(), "bad magic");
}

TEST(StatusError, CheckDataMacroThrowsOnViolation)
{
    // Passing condition: no throw, no side effects.
    EXPECT_NO_THROW(
        sage_check_data(1 + 1 == 2, Corrupt, "never evaluated"));

    try {
        const size_t have = 3, need = 8;
        sage_check_data(have >= need, Truncated, "stream holds ", have,
                        " bytes; need ", need);
        FAIL() << "sage_check_data did not throw";
    } catch (const StatusError &err) {
        EXPECT_EQ(err.status().code(), StatusCode::Truncated);
        EXPECT_EQ(err.status().message(),
                  "stream holds 3 bytes; need 8");
    }
}

TEST(StatusError, IsACatchableStdException)
{
    // try* boundaries catch StatusError as std::exception-derived;
    // the message must survive the upcast.
    try {
        throw StatusError(Status::ioError("disk gone"));
    } catch (const std::exception &err) {
        EXPECT_STREQ(err.what(), "disk gone");
    }
}

// ---------------------------------------------------------------------
// StatusOr
// ---------------------------------------------------------------------

TEST(StatusOr, HoldsValueOnSuccess)
{
    const StatusOr<int> result = 41 + 1; // Implicit from T.
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.status().ok());
    EXPECT_EQ(result.value(), 42);
    EXPECT_EQ(*result, 42);
}

TEST(StatusOr, HoldsStatusOnFailure)
{
    const StatusOr<int> result = Status::corrupt("no table");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::Corrupt);
    EXPECT_EQ(result.status().message(), "no table");
}

TEST(StatusOr, ImplicitConversionFromLambdaReturn)
{
    // The terse call-site convention: plain `return value;` and
    // `return Status::...;` both convert.
    const auto divide = [](int num, int den) -> StatusOr<int> {
        if (den == 0)
            return Status::outOfRange("division by zero");
        return num / den;
    };
    EXPECT_EQ(divide(10, 2).value(), 5);
    EXPECT_EQ(divide(10, 0).status().code(), StatusCode::OutOfRange);
}

TEST(StatusOr, SupportsMoveOnlyTypes)
{
    StatusOr<std::unique_ptr<std::string>> result =
        std::make_unique<std::string>("payload");
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(**result, "payload");
    EXPECT_EQ((*result)->size(), 7u);

    const std::unique_ptr<std::string> taken =
        std::move(result.value());
    EXPECT_EQ(*taken, "payload");
}

TEST(StatusOr, ArrowOperatorReachesValueMembers)
{
    const StatusOr<std::string> result = std::string("abcdef");
    EXPECT_EQ(result->size(), 6u);
}

TEST(StatusOrDeathTest, ValueOnFailureIsFatal)
{
    const StatusOr<int> result = Status::ioError("nope");
    EXPECT_DEATH({ (void)result.value(); }, "failed StatusOr");
}

TEST(StatusOrDeathTest, OkStatusWithoutValueIsFatal)
{
    EXPECT_DEATH({ StatusOr<int> bad{Status()}; (void)bad; },
                 "without a value");
}

} // namespace
} // namespace sage
