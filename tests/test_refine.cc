/**
 * @file
 * Tests for consensus refinement (derived-consensus mode, paper §2.2)
 * and failure-injection tests for the SAGe container (corruption and
 * truncation must be detected, never silently mis-decoded).
 */

#include <gtest/gtest.h>

#include "consensus/refine.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

// ---------------------------------------------------------------------
// Consensus refinement
// ---------------------------------------------------------------------

TEST(Refine, RewritesConsistentVariantSites)
{
    // Reads drawn from the donor but mapped against the reference:
    // true variant sites show consistent disagreement and should be
    // rewritten toward the donor base.
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0; // Enough coverage to vote.
    const SimulatedDataset ds = synthesizeDataset(spec);

    ThreadPool pool;
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet, &pool);

    RefineStats stats;
    const std::string refined =
        refineConsensus(ds.reference, ds.readSet, mappings, {}, &stats);
    EXPECT_GT(stats.positionsVoted, ds.reference.size() / 2);
    EXPECT_GT(stats.positionsChanged, 0u);
    EXPECT_EQ(refined.size(), ds.reference.size());
}

TEST(Refine, ReducesEditsOnRemap)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0;
    const SimulatedDataset ds = synthesizeDataset(spec);

    ThreadPool pool;
    ConsensusMapper draft_mapper(ds.reference);
    const auto draft_maps = draft_mapper.mapAll(ds.readSet, &pool);
    const MappingStats before =
        ConsensusMapper::summarize(draft_maps, ds.readSet);

    const std::string refined =
        refineConsensus(ds.reference, ds.readSet, draft_maps);
    ConsensusMapper refined_mapper(refined);
    const auto refined_maps = refined_mapper.mapAll(ds.readSet, &pool);
    const MappingStats after =
        ConsensusMapper::summarize(refined_maps, ds.readSet);

    EXPECT_LT(after.totalEdits, before.totalEdits)
        << "majority-vote polish should remove shared variant edits";
}

TEST(Refine, ImprovesSageCompressionRatio)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0;
    const SimulatedDataset ds = synthesizeDataset(spec);

    ThreadPool pool;
    ConsensusMapper mapper(ds.reference);
    const auto mappings = mapper.mapAll(ds.readSet, &pool);
    const std::string refined =
        refineConsensus(ds.reference, ds.readSet, mappings);

    const SageArchive base =
        sageCompress(ds.readSet, ds.reference, {}, &pool);
    const SageArchive polished =
        sageCompress(ds.readSet, refined, {}, &pool);
    EXPECT_LT(polished.dnaBytes, base.dnaBytes);

    // Still lossless against the refined consensus.
    const ReadSet back = sageDecompress(polished.bytes);
    std::multiset<std::string> want, got;
    for (const auto &read : ds.readSet.reads)
        want.insert(read.bases);
    for (const auto &read : back.reads)
        got.insert(read.bases);
    EXPECT_EQ(want, got);
}

TEST(Refine, NoChangesWithoutCoverage)
{
    ReadSet empty;
    const std::string draft(5000, 'A');
    RefineStats stats;
    const std::string refined =
        refineConsensus(draft, empty, {}, {}, &stats);
    EXPECT_EQ(refined, draft);
    EXPECT_EQ(stats.positionsChanged, 0u);
}

// ---------------------------------------------------------------------
// Failure injection on the SAGe container
// ---------------------------------------------------------------------

class SageCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const SimulatedDataset ds =
            synthesizeDataset(makeTinySpec(false));
        archive_ = sageCompress(ds.readSet, ds.reference).bytes;
    }

    std::vector<uint8_t> archive_;
};

TEST_F(SageCorruption, BitFlipIsDetected)
{
    Rng rng(99);
    for (int trial = 0; trial < 8; trial++) {
        auto corrupt = archive_;
        corrupt[rng.nextBelow(corrupt.size())] ^=
            static_cast<uint8_t>(1u << rng.nextBelow(8));
        // The bundle CRC covers every stream, so any flip dies in
        // deserialization rather than producing wrong reads.
        EXPECT_DEATH({ ReadSet rs = sageDecompress(corrupt); (void)rs; },
                     ".*");
    }
}

TEST_F(SageCorruption, TruncationIsDetected)
{
    auto truncated = archive_;
    truncated.resize(truncated.size() / 2);
    EXPECT_DEATH({ ReadSet rs = sageDecompress(truncated); (void)rs; },
                 ".*");
}

TEST_F(SageCorruption, EmptyInputIsRejected)
{
    std::vector<uint8_t> empty;
    EXPECT_DEATH({ ReadSet rs = sageDecompress(empty); (void)rs; },
                 ".*");
}

// ---------------------------------------------------------------------
// DNA-only decode mode
// ---------------------------------------------------------------------

TEST(DnaOnlyDecode, SkipsQualityButKeepsBases)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);

    SageDecoder full(archive.bytes, /*dna_only=*/false);
    SageDecoder dna(archive.bytes, /*dna_only=*/true);
    while (dna.hasNext()) {
        const Read full_read = full.next();
        const Read dna_read = dna.next();
        EXPECT_EQ(dna_read.bases, full_read.bases);
        EXPECT_TRUE(dna_read.quals.empty());
        EXPECT_FALSE(full_read.quals.empty());
    }
}

} // namespace
} // namespace sage
