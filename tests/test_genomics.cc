/**
 * @file
 * Unit tests for the genomics substrate: alphabet codecs, FASTQ
 * serialization and k-mer/minimizer extraction.
 */

#include <gtest/gtest.h>

#include "genomics/alphabet.hh"
#include "genomics/fastq.hh"
#include "genomics/kmer.hh"
#include "genomics/read.hh"
#include "util/rng.hh"

namespace sage {
namespace {

TEST(Alphabet, CodeRoundTrip)
{
    for (char c : {'A', 'C', 'G', 'T', 'N'})
        EXPECT_EQ(codeToBase(baseToCode(c)), c);
    EXPECT_EQ(baseToCode('a'), baseToCode('A'));
    EXPECT_EQ(baseToCode('x'), baseToCode('N'));
}

TEST(Alphabet, ReverseComplement)
{
    EXPECT_EQ(reverseComplement("ACGT"), "ACGT");
    EXPECT_EQ(reverseComplement("AACG"), "CGTT");
    EXPECT_EQ(reverseComplement("N"), "N");
    // Involution.
    const std::string s = "ACGTTGCANNACG";
    EXPECT_EQ(reverseComplement(reverseComplement(s)), s);
}

TEST(Alphabet, PackUnpackTwoBit)
{
    const std::string seq = "ACGTACGTGGTTCCAA";
    const auto packed = packSequence(seq, OutputFormat::TwoBit);
    EXPECT_EQ(packed.size(), (seq.size() * 2 + 7) / 8);
    EXPECT_EQ(unpackSequence(packed, seq.size(), OutputFormat::TwoBit),
              seq);
}

TEST(Alphabet, PackUnpackThreeBitWithN)
{
    const std::string seq = "ACGNNTACGN";
    const auto packed = packSequence(seq, OutputFormat::ThreeBit);
    EXPECT_EQ(unpackSequence(packed, seq.size(), OutputFormat::ThreeBit),
              seq);
}

TEST(Alphabet, AsciiPassThrough)
{
    const std::string seq = "ACGTN";
    const auto packed = packSequence(seq, OutputFormat::Ascii);
    EXPECT_EQ(unpackSequence(packed, seq.size(), OutputFormat::Ascii),
              seq);
}

TEST(Alphabet, IsAcgtOnly)
{
    EXPECT_TRUE(isAcgtOnly("ACGTACGT"));
    EXPECT_FALSE(isAcgtOnly("ACGNT"));
    EXPECT_TRUE(isAcgtOnly(""));
}

TEST(ReadSet, ByteAccounting)
{
    ReadSet rs;
    Read r;
    r.header = "r1";
    r.bases = "ACGT";
    r.quals = "IIII";
    rs.reads.push_back(r);
    // '@r1\n' + 'ACGT\n' + '+\n' + 'IIII\n' = 4 + 5 + 2 + 5.
    EXPECT_EQ(rs.fastqBytes(), 16u);
    EXPECT_EQ(rs.dnaBytes(), 5u);
    EXPECT_EQ(rs.qualityBytes(), 5u);
    EXPECT_TRUE(rs.hasQualityScores());
}

TEST(Fastq, RoundTrip)
{
    ReadSet rs;
    for (int i = 0; i < 10; i++) {
        Read r;
        r.header = "read." + std::to_string(i);
        r.bases = "ACGTACGTNN";
        r.quals = "IIIIIIIIII";
        rs.reads.push_back(r);
    }
    const ReadSet back = fromFastq(toFastq(rs), "x");
    ASSERT_EQ(back.reads.size(), rs.reads.size());
    for (size_t i = 0; i < rs.reads.size(); i++) {
        EXPECT_EQ(back.reads[i].header, rs.reads[i].header);
        EXPECT_EQ(back.reads[i].bases, rs.reads[i].bases);
        EXPECT_EQ(back.reads[i].quals, rs.reads[i].quals);
    }
}

TEST(Fastq, FileRoundTrip)
{
    ReadSet rs;
    Read r;
    r.header = "f";
    r.bases = "ACGT";
    r.quals = "!!!!";
    rs.reads.push_back(r);
    const std::string path = "/tmp/sage_test_roundtrip.fastq";
    writeFastqFile(rs, path);
    const ReadSet back = readFastqFile(path);
    ASSERT_EQ(back.reads.size(), 1u);
    EXPECT_EQ(back.reads[0].bases, "ACGT");
}

TEST(Kmer, ExtractSkipsN)
{
    const auto hits = extractKmers("ACGTNACGTA", 4);
    // Windows containing the N at index 4 are skipped.
    for (const auto &hit : hits) {
        EXPECT_TRUE(hit.pos + 4 <= 4 || hit.pos >= 5);
    }
    EXPECT_FALSE(hits.empty());
}

TEST(Kmer, PackedValueMatchesManual)
{
    const auto hits = extractKmers("ACGT", 4);
    ASSERT_EQ(hits.size(), 1u);
    // A=0 C=1 G=2 T=3 -> 0b00011011.
    EXPECT_EQ(hits[0].kmer, 0b00011011u);
}

TEST(Kmer, MinimizersAreSubsetOfKmers)
{
    std::string seq;
    Rng rng(17);
    for (int i = 0; i < 2000; i++)
        seq.push_back(codeToBase(static_cast<uint8_t>(rng.nextBelow(4))));
    const auto all = extractKmers(seq, 15);
    const auto mins = extractMinimizers(seq, 15, 5);
    EXPECT_LT(mins.size(), all.size());
    EXPECT_GT(mins.size(), all.size() / 10);
    // Every minimizer must be a real k-mer at its position.
    for (const auto &m : mins) {
        EXPECT_EQ(seq.substr(m.pos, 15),
                  seq.substr(m.pos, 15)); // Position validity.
        ASSERT_LE(m.pos + 15, seq.size());
    }
}

TEST(Kmer, MinimizersDeterministic)
{
    std::string seq;
    Rng rng(18);
    for (int i = 0; i < 500; i++)
        seq.push_back(codeToBase(static_cast<uint8_t>(rng.nextBelow(4))));
    const auto a = extractMinimizers(seq, 11, 7);
    const auto b = extractMinimizers(seq, 11, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].kmer, b[i].kmer);
        EXPECT_EQ(a[i].pos, b[i].pos);
    }
}

TEST(Kmer, CanonicalIsStrandInvariant)
{
    const std::string fwd = "ACGGTAGCATG";
    const std::string rev = reverseComplement(fwd);
    const auto hf = extractKmers(fwd, 11);
    const auto hr = extractKmers(rev, 11);
    ASSERT_EQ(hf.size(), 1u);
    ASSERT_EQ(hr.size(), 1u);
    EXPECT_EQ(canonicalKmer(hf[0].kmer, 11),
              canonicalKmer(hr[0].kmer, 11));
}

} // namespace
} // namespace sage
