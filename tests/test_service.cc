/**
 * @file
 * Tests for the concurrent archive service layer (service/service.hh):
 * ChunkCache LRU/eviction/single-flight semantics, the request
 * scheduler's priority ordering, sync/async/callback request APIs,
 * per-client sessions with readahead, and the acceptance stress test —
 * many clients over a FileSource-backed archive with a tiny cache
 * budget must produce byte-identical reads vs one sequential
 * SageReader. Runs under the ASan/UBSan and TSan presets in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

/** Scratch path unique to the running test: ctest runs every test as
 *  its own parallel process, so fixture files must not collide. */
std::string
perTestScratchPath(const std::string &suffix)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "sage_service_" +
        std::string(info->test_suite_name()) + "_" + info->name() +
        "_" + suffix;
}

/** Element-wise equality including headers. */
void
expectSameReads(const std::vector<Read> &a, const std::vector<Read> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].bases, b[i].bases) << "read " << i;
        ASSERT_EQ(a[i].quals, b[i].quals) << "read " << i;
        ASSERT_EQ(a[i].header, b[i].header) << "read " << i;
    }
}

/** A decoded chunk of @p reads copies with ~@p bytes_each payload. */
DecodedChunkPtr
makeChunk(size_t chunk, uint64_t first_read, size_t reads,
          size_t bytes_each)
{
    auto data = std::make_shared<DecodedChunk>();
    data->firstRead = first_read;
    for (size_t r = 0; r < reads; r++) {
        Read read;
        read.bases.assign(bytes_each, "ACGT"[(chunk + r) % 4]);
        data->reads.push_back(std::move(read));
    }
    data->bytes = DecodedChunk::residentBytes(data->reads);
    return data;
}

// ---------------------------------------------------------------------
// ChunkCache
// ---------------------------------------------------------------------

TEST(ChunkCache, HitAvoidsSecondDecode)
{
    ChunkCache cache(1 << 20, 2);
    std::atomic<int> decodes{0};
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        decodes++;
        return makeChunk(chunk, 0, 4, 64);
    };
    const DecodedChunkPtr first = cache.getOrDecode(7, decode);
    const DecodedChunkPtr again = cache.getOrDecode(7, decode);
    EXPECT_EQ(decodes.load(), 1);
    EXPECT_EQ(first.get(), again.get());
    const ChunkCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.inserts, 1u);
    EXPECT_EQ(stats.residentChunks, 1u);
    EXPECT_GT(stats.residentBytes, 0u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
    EXPECT_TRUE(cache.contains(7));
    EXPECT_FALSE(cache.contains(8));
}

TEST(ChunkCache, EvictsLeastRecentlyUsedWithinBudget)
{
    // One shard so the LRU order is global; each chunk ~1 KB, budget
    // fits two.
    const uint64_t chunk_bytes = makeChunk(0, 0, 4, 256)->bytes;
    ChunkCache cache(2 * chunk_bytes + chunk_bytes / 2, 1);
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        return makeChunk(chunk, 0, 4, 256);
    };
    cache.getOrDecode(0, decode);
    cache.getOrDecode(1, decode);
    cache.getOrDecode(0, decode);  // Touch 0: 1 becomes the LRU victim.
    cache.getOrDecode(2, decode);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    const ChunkCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.residentBytes, cache.budgetBytes());
}

TEST(ChunkCache, ZeroBudgetServesWithoutRetaining)
{
    ChunkCache cache(0, 4);
    std::atomic<int> decodes{0};
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        decodes++;
        return makeChunk(chunk, 0, 2, 32);
    };
    const DecodedChunkPtr data = cache.getOrDecode(3, decode);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->reads.size(), 2u);
    EXPECT_FALSE(cache.contains(3));
    cache.getOrDecode(3, decode);
    EXPECT_EQ(decodes.load(), 2);  // Nothing was retained.
    EXPECT_EQ(cache.stats().residentBytes, 0u);
}

TEST(ChunkCache, ClearDropsResidents)
{
    ChunkCache cache(1 << 20, 2);
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        return makeChunk(chunk, 0, 2, 32);
    };
    cache.getOrDecode(0, decode);
    cache.getOrDecode(1, decode);
    EXPECT_EQ(cache.stats().residentChunks, 2u);
    cache.clear();
    EXPECT_EQ(cache.stats().residentChunks, 0u);
    EXPECT_EQ(cache.stats().residentBytes, 0u);
    EXPECT_FALSE(cache.contains(0));
}

TEST(ChunkCache, ClearDuringInFlightDecodeServesButDoesNotRetain)
{
    ChunkCache cache(1 << 20, 1);
    std::promise<void> decode_entered;
    std::promise<void> release_decode;
    std::thread leader([&] {
        const DecodedChunkPtr data =
            cache.getOrDecode(0, [&](size_t chunk) {
                decode_entered.set_value();
                release_decode.get_future().wait();
                return makeChunk(chunk, 0, 2, 32);
            });
        EXPECT_NE(data, nullptr);
    });
    decode_entered.get_future().wait();
    cache.clear();  // Invalidates the in-flight decode's publish.
    release_decode.set_value();
    leader.join();
    // The waiting caller got its chunk, but the memory the clear()
    // released was not silently re-populated behind its back.
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.stats().residentBytes, 0u);
}

TEST(ChunkCache, SingleFlightDecodesOnceUnderContention)
{
    ChunkCache cache(1 << 20, 1);
    std::atomic<int> decodes{0};
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        decodes++;
        // Hold the flight open long enough for followers to join.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return makeChunk(chunk, 0, 4, 64);
    };
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<DecodedChunkPtr> results(kThreads);
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            results[static_cast<size_t>(t)] =
                cache.getOrDecode(5, decode);
        });
    }
    for (auto &thread : threads)
        thread.join();
    // However the threads interleave, exactly one decode ran and every
    // caller observed the same chunk (leader, coalesced follower, or
    // post-insert hit).
    EXPECT_EQ(decodes.load(), 1);
    for (const auto &result : results)
        EXPECT_EQ(result.get(), results[0].get());
    const ChunkCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.coalescedWaits,
              static_cast<uint64_t>(kThreads - 1));
    EXPECT_GT(stats.hitRate(), 0.0);
}

// ---------------------------------------------------------------------
// Service fixture
// ---------------------------------------------------------------------

class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
        SageConfig config;
        config.chunkReads = 64;  // Many small chunks.
        config.preserveOrder = false;
        archive_ = sageCompress(ds.readSet, ds.reference, config);
        path_ = perTestScratchPath("archive.sage");
        {
            FileSink sink(path_);
            sink.writeBytes(archive_.bytes);
        }

        // Stored-order ground truth from a plain sequential reader.
        SageReader reader(path_);
        chunks_ = reader.chunkCount();
        for (size_t c = 0; c < chunks_; c++) {
            const std::vector<Read> reads = reader.readChunk(c);
            expected_.insert(expected_.end(), reads.begin(),
                             reads.end());
        }
        ASSERT_GT(chunks_, 4u);
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    SageArchive archive_;
    std::string path_;
    size_t chunks_ = 0;
    std::vector<Read> expected_;  ///< All reads in stored order.
};

TEST_F(ServiceTest, ReadRangeMatchesSequentialReader)
{
    SageArchiveService service(path_);
    EXPECT_EQ(service.chunkCount(), chunks_);
    EXPECT_EQ(service.readCount(), expected_.size());

    // Whole archive in one request.
    expectSameReads(service.readRange(0, service.readCount()),
                    expected_);

    // Unaligned spans crossing chunk boundaries.
    for (uint64_t first : {0ull, 1ull, 63ull, 64ull, 65ull, 130ull}) {
        for (uint64_t count : {0ull, 1ull, 64ull, 129ull}) {
            if (first + count > expected_.size())
                continue;
            const std::vector<Read> got =
                service.readRange(first, count);
            const std::vector<Read> want(
                expected_.begin() + static_cast<ptrdiff_t>(first),
                expected_.begin() +
                    static_cast<ptrdiff_t>(first + count));
            expectSameReads(got, want);
        }
    }
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.requests, 0u);
    EXPECT_GT(stats.cache.hitRate(), 0.0);
    EXPECT_GT(stats.latencySamples, 0u);
    EXPECT_GE(stats.p99LatencySeconds, stats.p50LatencySeconds);
}

TEST_F(ServiceTest, ReadChunkMatchesReaderChunks)
{
    // Memory-backed source works identically to the file path.
    MemorySource source(archive_.bytes);
    SageArchiveService service(source);
    uint64_t first = 0;
    for (size_t c = 0; c < chunks_; c++) {
        const std::vector<Read> got = service.readChunk(c);
        const std::vector<Read> want(
            expected_.begin() + static_cast<ptrdiff_t>(first),
            expected_.begin() +
                static_cast<ptrdiff_t>(first + got.size()));
        expectSameReads(got, want);
        first += got.size();
    }
    EXPECT_EQ(first, expected_.size());
}

TEST_F(ServiceTest, AsyncAndCallbackFlavorsMatchSync)
{
    SageArchiveService service(path_);
    auto future_a = service.readRangeAsync(0, 100);
    auto future_b = service.readChunkAsync(1);
    expectSameReads(future_a.get(),
                    {expected_.begin(), expected_.begin() + 100});
    const std::vector<Read> chunk1 = service.readChunk(1);
    expectSameReads(future_b.get(), chunk1);

    std::promise<std::vector<Read>> done;
    service.readRangeCallback(
        5, 70,
        [&](std::vector<Read> reads) {
            done.set_value(std::move(reads));
        });
    expectSameReads(done.get_future().get(),
                    {expected_.begin() + 5, expected_.begin() + 75});
}

TEST_F(ServiceTest, SessionWalksArchiveInStoredOrder)
{
    SageArchiveService service(path_);
    ServiceSession session = service.openSession();
    EXPECT_EQ(session.remaining(), expected_.size());
    std::vector<Read> walked;
    while (session.hasNext())
        walked.push_back(session.next());
    expectSameReads(walked, expected_);
    EXPECT_EQ(session.remaining(), 0u);

    // On a single-core pool every trampoline prefers the client's
    // Normal-priority fetches, so the Background warms may all still
    // be queued here — drain them before reading the counters.
    service.pool().wait();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.readsServed, expected_.size());
    // A sequential walk triggers next-chunk readahead warms, and the
    // drained warms find their chunks resident (or decode them for the
    // session to hit), so the lookup mix can't be all misses.
    EXPECT_GT(stats.readaheadWarms, 0u);
    EXPECT_GT(stats.cache.hitRate(), 0.0);
    EXPECT_EQ(stats.queueDepth, 0u);
}

TEST_F(ServiceTest, SessionBulkReadAndSeek)
{
    SageArchiveService service(path_);
    ServiceSession session = service.openSession();
    const std::vector<Read> bulk = session.read(150);
    expectSameReads(bulk, {expected_.begin(), expected_.begin() + 150});
    EXPECT_EQ(session.position(), 150u);

    session.seek(10);
    const std::vector<Read> after_seek = session.read(5);
    expectSameReads(after_seek,
                    {expected_.begin() + 10, expected_.begin() + 15});

    // Clamped read at the end of the archive.
    session.seek(expected_.size() - 3);
    EXPECT_EQ(session.read(100).size(), 3u);
    EXPECT_FALSE(session.hasNext());
}

TEST_F(ServiceTest, DnaOnlyServiceSkipsQuality)
{
    ServiceOptions options;
    options.dnaOnly = true;
    SageArchiveService service(path_, options);
    const std::vector<Read> got = service.readRange(0, 64);
    for (size_t i = 0; i < got.size(); i++) {
        EXPECT_EQ(got[i].bases, expected_[i].bases) << "read " << i;
        EXPECT_TRUE(got[i].quals.empty()) << "read " << i;
    }
}

TEST_F(ServiceTest, SharedExternalPoolAndWarm)
{
    ThreadPool pool(2);
    ServiceOptions options;
    options.pool = &pool;
    SageArchiveService service(path_, options);
    EXPECT_EQ(&service.pool(), &pool);

    service.warmChunk(2);
    service.warmChunk(2);              // Duplicate warm is coalesced.
    service.warmChunk(chunks_ + 100);  // Out of range: no-op.
    pool.wait();
    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.requestsByPriority[static_cast<size_t>(
                  RequestPriority::Background)],
              1u);
    // The warmed chunk now hits without a decode.
    const ChunkCacheStats before = service.stats().cache;
    service.readChunk(2);
    const ChunkCacheStats after = service.stats().cache;
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_GT(after.hits, before.hits);
}

TEST_F(ServiceTest, DestructorDrainsOutstandingRequests)
{
    std::future<std::vector<Read>> abandoned;
    {
        SageArchiveService service(path_);
        abandoned = service.readRangeAsync(0, expected_.size());
        // Service destroyed with the request possibly still queued.
    }
    // The drain guarantees the request completed before teardown.
    expectSameReads(abandoned.get(), expected_);
}

TEST_F(ServiceTest, TinyCacheBudgetStillServesCorrectly)
{
    ServiceOptions options;
    options.cacheBudgetBytes = 1;  // Effectively uncacheable entries.
    options.cacheShards = 2;
    SageArchiveService service(path_, options);
    expectSameReads(service.readRange(0, service.readCount()),
                    expected_);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.residentBytes, 0u);
    EXPECT_GT(stats.cache.evictions + stats.cache.misses, 0u);
}

// ---------------------------------------------------------------------
// Acceptance stress test: many concurrent clients, mixed hot/cold
// access, tiny cache budget, FileSource-backed archive.
// ---------------------------------------------------------------------

TEST_F(ServiceTest, StressManyClientsByteIdenticalToSequentialReader)
{
    ServiceOptions options;
    // A budget of ~4 decoded chunks: hot chunks stay resident, the
    // sequential walks constantly evict — both paths exercised.
    options.cacheBudgetBytes =
        4 * DecodedChunk::residentBytes(
                {expected_.begin(), expected_.begin() + 64});
    options.cacheShards = 4;
    options.ownedPoolThreads = 8;
    SageArchiveService service(path_, options);

    constexpr size_t kClients = 20;  // >= 16 per acceptance criteria.
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kClients; t++) {
        clients.emplace_back([&, t] {
            const auto check = [&](const std::vector<Read> &got,
                                   uint64_t first) {
                for (size_t i = 0; i < got.size(); i++) {
                    const Read &want =
                        expected_[static_cast<size_t>(first) + i];
                    if (got[i].bases != want.bases ||
                        got[i].quals != want.quals ||
                        got[i].header != want.header) {
                        failures++;
                        return;
                    }
                }
            };
            if (t % 4 == 0) {
                // Hot client: hammers the first two chunks.
                for (int it = 0; it < 20; it++)
                    check(service.readRange(0, 128), 0);
            } else if (t % 4 == 1) {
                // Session client: full sequential walk.
                ServiceSession session = service.openSession();
                std::vector<Read> walked;
                while (session.hasNext())
                    walked.push_back(session.next());
                check(walked, 0);
            } else if (t % 4 == 2) {
                // Strided cold client: chunk-grained random access.
                for (size_t c = t % chunks_, n = 0; n < chunks_;
                     n++, c = (c + 3) % chunks_) {
                    // chunkReads=64, so chunk c starts at read 64*c.
                    check(service.readChunk(c),
                          64 * static_cast<uint64_t>(c));
                }
            } else {
                // Async client: overlapping span futures.
                std::vector<
                    std::pair<uint64_t,
                              std::future<std::vector<Read>>>>
                    pending;
                for (uint64_t first = t; first + 97 < expected_.size();
                     first += 101) {
                    pending.emplace_back(
                        first, service.readRangeAsync(first, 97));
                }
                for (auto &[first, future] : pending)
                    check(future.get(), first);
            }
        });
    }
    for (auto &client : clients)
        client.join();

    EXPECT_EQ(failures.load(), 0);
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.cache.hitRate(), 0.0);    // Acceptance criterion.
    EXPECT_GT(stats.cache.evictions, 0u);     // Tiny budget really evicted.
    EXPECT_GT(stats.requests, kClients);
    EXPECT_GT(stats.readsServed, 0u);
    EXPECT_GT(stats.bytesServed, 0u);
    EXPECT_LE(stats.cache.residentBytes, options.cacheBudgetBytes);
    EXPECT_GT(stats.latencySamples, 0u);
    EXPECT_GE(stats.maxQueueDepth, 1u);
}

} // namespace
} // namespace sage
