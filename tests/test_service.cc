/**
 * @file
 * Tests for the concurrent archive service layer (service/service.hh):
 * ChunkCache LRU/eviction/single-flight semantics, the request
 * scheduler's priority ordering, sync/async/callback request APIs,
 * per-client sessions with readahead, and the acceptance stress test —
 * many clients over a FileSource-backed archive with a tiny cache
 * budget must produce byte-identical reads vs one sequential
 * SageReader. Runs under the ASan/UBSan and TSan presets in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

namespace sage {
namespace {

/** Scratch path unique to the running test: ctest runs every test as
 *  its own parallel process, so fixture files must not collide. */
std::string
perTestScratchPath(const std::string &suffix)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "sage_service_" +
        std::string(info->test_suite_name()) + "_" + info->name() +
        "_" + suffix;
}

/** Element-wise equality including headers. */
void
expectSameReads(const std::vector<Read> &a, const std::vector<Read> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].bases, b[i].bases) << "read " << i;
        ASSERT_EQ(a[i].quals, b[i].quals) << "read " << i;
        ASSERT_EQ(a[i].header, b[i].header) << "read " << i;
    }
}

/** A decoded chunk of @p reads copies with ~@p bytes_each payload. */
DecodedChunkPtr
makeChunk(size_t chunk, uint64_t first_read, size_t reads,
          size_t bytes_each)
{
    auto data = std::make_shared<DecodedChunk>();
    data->firstRead = first_read;
    for (size_t r = 0; r < reads; r++) {
        Read read;
        read.bases.assign(bytes_each, "ACGT"[(chunk + r) % 4]);
        data->reads.push_back(std::move(read));
    }
    data->bytes = DecodedChunk::residentBytes(data->reads);
    return data;
}

// ---------------------------------------------------------------------
// ChunkCache
// ---------------------------------------------------------------------

TEST(ChunkCache, HitAvoidsSecondDecode)
{
    ChunkCache cache(1 << 20, 2);
    std::atomic<int> decodes{0};
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        decodes++;
        return makeChunk(chunk, 0, 4, 64);
    };
    const DecodedChunkPtr first = cache.getOrDecode(7, decode);
    const DecodedChunkPtr again = cache.getOrDecode(7, decode);
    EXPECT_EQ(decodes.load(), 1);
    EXPECT_EQ(first.get(), again.get());
    const ChunkCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.inserts, 1u);
    EXPECT_EQ(stats.residentChunks, 1u);
    EXPECT_GT(stats.residentBytes, 0u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
    EXPECT_TRUE(cache.contains(7));
    EXPECT_FALSE(cache.contains(8));
}

TEST(ChunkCache, EvictsUnvisitedBeforeReReferencedWithinBudget)
{
    // One shard so the eviction order is global; each chunk ~1 KB,
    // budget fits two. The re-referenced chunk (visited bit set) is
    // spared by the SIEVE hand; the single-touch one is the victim.
    const uint64_t chunk_bytes = makeChunk(0, 0, 4, 256)->bytes;
    ChunkCache cache(2 * chunk_bytes + chunk_bytes / 2, 1);
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        return makeChunk(chunk, 0, 4, 256);
    };
    cache.getOrDecode(0, decode);
    cache.getOrDecode(1, decode);
    cache.getOrDecode(0, decode);  // Re-reference 0: 1 is the victim.
    cache.getOrDecode(2, decode);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));
    const ChunkCacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_LE(stats.residentBytes, cache.budgetBytes());
}

TEST(ChunkCache, HotChunkSurvivesFullSequentialSweep)
{
    // Scan resistance, the reason this cache is not an LRU: a chunk
    // that was re-referenced must stay resident while a sequential
    // sweep several times the cache's size streams past. Under LRU
    // every scanned chunk would displace it within one budget's worth
    // of inserts.
    const uint64_t chunk_bytes = makeChunk(0, 0, 4, 256)->bytes;
    ChunkCache cache(2 * chunk_bytes + chunk_bytes / 2, 1);
    std::atomic<int> hot_decodes{0};
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        if (chunk == 1000)
            hot_decodes++;
        return makeChunk(chunk, 0, 4, 256);
    };
    cache.getOrDecode(1000, decode);
    cache.getOrDecode(1000, decode);  // Earn residency (visited).
    for (size_t c = 0; c < 64; c++)
        cache.getOrDecode(c, decode);  // Full single-touch sweep.
    EXPECT_TRUE(cache.contains(1000));
    cache.getOrDecode(1000, decode);
    EXPECT_EQ(hot_decodes.load(), 1);  // Never re-decoded.
    const ChunkCacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);  // The sweep really churned.
    EXPECT_LE(stats.residentBytes, cache.budgetBytes());
}

TEST(ChunkCache, GhostHitReadmitsEvictedChunkAsProtected)
{
    // A chunk evicted as scan fodder but then wanted again proves
    // re-reference through the ghost set: its re-decode is admitted
    // pre-visited, so the next sweep spares it.
    const uint64_t chunk_bytes = makeChunk(0, 0, 4, 256)->bytes;
    ChunkCache cache(2 * chunk_bytes + chunk_bytes / 2, 1);
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        return makeChunk(chunk, 0, 4, 256);
    };
    cache.getOrDecode(7, decode);
    for (size_t c = 100; c < 104; c++)
        cache.getOrDecode(c, decode);  // Sweep 7 out (ghosted).
    ASSERT_FALSE(cache.contains(7));
    cache.getOrDecode(7, decode);  // Ghost hit: re-admitted protected.
    EXPECT_TRUE(cache.contains(7));
    const uint64_t ghost_hits = cache.stats().ghostHits;
    EXPECT_GE(ghost_hits, 1u);
    // Protected means it now survives another sweep.
    for (size_t c = 200; c < 204; c++)
        cache.getOrDecode(c, decode);
    EXPECT_TRUE(cache.contains(7));
    EXPECT_GT(cache.stats().ghostChunks, 0u);
}

TEST(ChunkCache, OversizedEntryServedNotRetained)
{
    // An entry bigger than its shard's whole budget can never be
    // resident; it is served to the caller without evicting the
    // entire shard for nothing.
    const uint64_t chunk_bytes = makeChunk(0, 0, 4, 256)->bytes;
    ChunkCache cache(chunk_bytes / 2, 1);
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        return makeChunk(chunk, 0, 4, 256);
    };
    const DecodedChunkPtr data = cache.getOrDecode(0, decode);
    ASSERT_NE(data, nullptr);
    EXPECT_FALSE(cache.contains(0));
    const ChunkCacheStats stats = cache.stats();
    EXPECT_EQ(stats.oversizedRejects, 1u);
    EXPECT_EQ(stats.inserts, 0u);
    EXPECT_EQ(stats.residentBytes, 0u);
}

TEST(ChunkCache, CancelledFollowerAbandonsWaitLeaderStillPopulates)
{
    // The single-flight cancellation contract: a follower whose
    // request is cancelled while parked on the leader's decode walks
    // away with nullptr; the leader is unaffected and its result
    // still lands in the cache for everyone else.
    ChunkCache cache(1 << 20, 1);
    std::promise<void> decode_entered;
    std::promise<void> release_decode;
    std::thread leader([&] {
        const DecodedChunkPtr data =
            cache.getOrDecode(0, [&](size_t chunk) {
                decode_entered.set_value();
                release_decode.get_future().wait();
                return makeChunk(chunk, 0, 2, 32);
            });
        EXPECT_NE(data, nullptr);
    });
    decode_entered.get_future().wait();

    CancelSource source;
    RequestOptions options;
    options.cancel = source.token();
    std::promise<DecodedChunkPtr> follower_result;
    std::thread follower([&] {
        follower_result.set_value(cache.getOrDecode(
            0, [](size_t) -> DecodedChunkPtr {
                ADD_FAILURE() << "follower must join, not decode";
                return nullptr;
            },
            &options));
    });
    // Let the follower park on the flight, then cancel it.
    while (cache.stats().coalescedWaits == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    source.cancel();
    EXPECT_EQ(follower_result.get_future().get(), nullptr);
    follower.join();
    EXPECT_EQ(cache.stats().abandonedWaits, 1u);

    // The leader completes and populates regardless.
    release_decode.set_value();
    leader.join();
    EXPECT_TRUE(cache.contains(0));
    std::atomic<int> decodes{0};
    cache.getOrDecode(0, [&](size_t chunk) {
        decodes++;
        return makeChunk(chunk, 0, 2, 32);
    });
    EXPECT_EQ(decodes.load(), 0);  // Served from the leader's insert.
}

TEST(ChunkCache, ExpiredFollowerAbandonsWait)
{
    ChunkCache cache(1 << 20, 1);
    std::promise<void> decode_entered;
    std::promise<void> release_decode;
    std::thread leader([&] {
        cache.getOrDecode(0, [&](size_t chunk) {
            decode_entered.set_value();
            release_decode.get_future().wait();
            return makeChunk(chunk, 0, 2, 32);
        });
    });
    decode_entered.get_future().wait();

    RequestOptions options;
    options.deadline = RequestOptions::deadlineIn(0.01);
    const DecodedChunkPtr data = cache.getOrDecode(
        0, [](size_t) -> DecodedChunkPtr { return nullptr; },
        &options);
    EXPECT_EQ(data, nullptr);  // Gave up after ~10 ms, not forever.
    EXPECT_EQ(cache.stats().abandonedWaits, 1u);
    release_decode.set_value();
    leader.join();
}

// ---------------------------------------------------------------------
// CancelToken / RequestOptions
// ---------------------------------------------------------------------

TEST(CancelTokenTest, DefaultTokenNeverCancels)
{
    const CancelToken token;
    EXPECT_FALSE(token.connected());
    EXPECT_FALSE(token.cancelled());
    const RequestOptions options;
    EXPECT_FALSE(options.abandonable());
    EXPECT_EQ(options.checkNow(), RequestStatus::Ok);
}

TEST(CancelTokenTest, CopiesShareTheSourceFlag)
{
    CancelSource source;
    const CancelToken token = source.token();
    const CancelToken copy = token;
    EXPECT_TRUE(copy.connected());
    EXPECT_FALSE(copy.cancelled());
    source.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(copy.cancelled());
    EXPECT_TRUE(source.cancelled());
}

TEST(CancelTokenTest, CancellationBeatsExpiryInCheckNow)
{
    CancelSource source;
    source.cancel();
    RequestOptions options;
    options.cancel = source.token();
    options.deadline = RequestOptions::deadlineIn(-1.0);  // Past.
    EXPECT_TRUE(options.abandonable());
    EXPECT_EQ(options.checkNow(), RequestStatus::Cancelled);
}

TEST(CancelTokenTest, DeadlineExpires)
{
    RequestOptions options;
    EXPECT_FALSE(options.hasDeadline());
    options.deadline = RequestOptions::deadlineIn(3600.0);
    EXPECT_TRUE(options.hasDeadline());
    EXPECT_EQ(options.checkNow(), RequestStatus::Ok);
    options.deadline = RequestOptions::deadlineIn(-0.001);
    EXPECT_EQ(options.checkNow(), RequestStatus::Expired);
}

TEST(ChunkCache, ZeroBudgetServesWithoutRetaining)
{
    ChunkCache cache(0, 4);
    std::atomic<int> decodes{0};
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        decodes++;
        return makeChunk(chunk, 0, 2, 32);
    };
    const DecodedChunkPtr data = cache.getOrDecode(3, decode);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->reads.size(), 2u);
    EXPECT_FALSE(cache.contains(3));
    cache.getOrDecode(3, decode);
    EXPECT_EQ(decodes.load(), 2);  // Nothing was retained.
    EXPECT_EQ(cache.stats().residentBytes, 0u);
}

TEST(ChunkCache, ClearDropsResidents)
{
    ChunkCache cache(1 << 20, 2);
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        return makeChunk(chunk, 0, 2, 32);
    };
    cache.getOrDecode(0, decode);
    cache.getOrDecode(1, decode);
    EXPECT_EQ(cache.stats().residentChunks, 2u);
    cache.clear();
    EXPECT_EQ(cache.stats().residentChunks, 0u);
    EXPECT_EQ(cache.stats().residentBytes, 0u);
    EXPECT_FALSE(cache.contains(0));
}

TEST(ChunkCache, ClearDuringInFlightDecodeServesButDoesNotRetain)
{
    ChunkCache cache(1 << 20, 1);
    std::promise<void> decode_entered;
    std::promise<void> release_decode;
    std::thread leader([&] {
        const DecodedChunkPtr data =
            cache.getOrDecode(0, [&](size_t chunk) {
                decode_entered.set_value();
                release_decode.get_future().wait();
                return makeChunk(chunk, 0, 2, 32);
            });
        EXPECT_NE(data, nullptr);
    });
    decode_entered.get_future().wait();
    cache.clear();  // Invalidates the in-flight decode's publish.
    release_decode.set_value();
    leader.join();
    // The waiting caller got its chunk, but the memory the clear()
    // released was not silently re-populated behind its back.
    EXPECT_FALSE(cache.contains(0));
    EXPECT_EQ(cache.stats().residentBytes, 0u);
}

TEST(ChunkCache, SingleFlightDecodesOnceUnderContention)
{
    ChunkCache cache(1 << 20, 1);
    std::atomic<int> decodes{0};
    const ChunkCache::DecodeFn decode = [&](size_t chunk) {
        decodes++;
        // Hold the flight open long enough for followers to join.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return makeChunk(chunk, 0, 4, 64);
    };
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    std::vector<DecodedChunkPtr> results(kThreads);
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            results[static_cast<size_t>(t)] =
                cache.getOrDecode(5, decode);
        });
    }
    for (auto &thread : threads)
        thread.join();
    // However the threads interleave, exactly one decode ran and every
    // caller observed the same chunk (leader, coalesced follower, or
    // post-insert hit).
    EXPECT_EQ(decodes.load(), 1);
    for (const auto &result : results)
        EXPECT_EQ(result.get(), results[0].get());
    const ChunkCacheStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.coalescedWaits,
              static_cast<uint64_t>(kThreads - 1));
    EXPECT_GT(stats.hitRate(), 0.0);
}

// ---------------------------------------------------------------------
// Service fixture
// ---------------------------------------------------------------------

class ServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
        SageConfig config;
        config.chunkReads = 64;  // Many small chunks.
        config.preserveOrder = false;
        archive_ = sageCompress(ds.readSet, ds.reference, config);
        path_ = perTestScratchPath("archive.sage");
        {
            FileSink sink(path_);
            sink.writeBytes(archive_.bytes);
        }

        // Stored-order ground truth from a plain sequential reader.
        SageReader reader(path_);
        chunks_ = reader.chunkCount();
        for (size_t c = 0; c < chunks_; c++) {
            const std::vector<Read> reads = reader.readChunk(c);
            expected_.insert(expected_.end(), reads.begin(),
                             reads.end());
        }
        ASSERT_GT(chunks_, 4u);
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    SageArchive archive_;
    std::string path_;
    size_t chunks_ = 0;
    std::vector<Read> expected_;  ///< All reads in stored order.
};

TEST_F(ServiceTest, ReadRangeMatchesSequentialReader)
{
    SageArchiveService service(path_);
    EXPECT_EQ(service.chunkCount(), chunks_);
    EXPECT_EQ(service.readCount(), expected_.size());

    // Whole archive in one request.
    expectSameReads(service.readRange(0, service.readCount()),
                    expected_);

    // Unaligned spans crossing chunk boundaries.
    for (uint64_t first : {0ull, 1ull, 63ull, 64ull, 65ull, 130ull}) {
        for (uint64_t count : {0ull, 1ull, 64ull, 129ull}) {
            if (first + count > expected_.size())
                continue;
            const std::vector<Read> got =
                service.readRange(first, count);
            const std::vector<Read> want(
                expected_.begin() + static_cast<ptrdiff_t>(first),
                expected_.begin() +
                    static_cast<ptrdiff_t>(first + count));
            expectSameReads(got, want);
        }
    }
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.requests, 0u);
    EXPECT_GT(stats.cache.hitRate(), 0.0);
    EXPECT_GT(stats.latencySamples, 0u);
    EXPECT_GE(stats.p99LatencySeconds, stats.p50LatencySeconds);
}

TEST_F(ServiceTest, ReadChunkMatchesReaderChunks)
{
    // Memory-backed source works identically to the file path.
    MemorySource source(archive_.bytes);
    SageArchiveService service(source);
    uint64_t first = 0;
    for (size_t c = 0; c < chunks_; c++) {
        const std::vector<Read> got = service.readChunk(c);
        const std::vector<Read> want(
            expected_.begin() + static_cast<ptrdiff_t>(first),
            expected_.begin() +
                static_cast<ptrdiff_t>(first + got.size()));
        expectSameReads(got, want);
        first += got.size();
    }
    EXPECT_EQ(first, expected_.size());
}

TEST_F(ServiceTest, AsyncAndCallbackFlavorsMatchSync)
{
    SageArchiveService service(path_);
    auto future_a = service.readRangeAsync(0, 100);
    auto future_b = service.readChunkAsync(1);
    expectSameReads(future_a.get(),
                    {expected_.begin(), expected_.begin() + 100});
    const std::vector<Read> chunk1 = service.readChunk(1);
    expectSameReads(future_b.get(), chunk1);

    std::promise<std::vector<Read>> done;
    service.readRangeCallback(
        5, 70,
        [&](std::vector<Read> reads) {
            done.set_value(std::move(reads));
        });
    expectSameReads(done.get_future().get(),
                    {expected_.begin() + 5, expected_.begin() + 75});
}

TEST_F(ServiceTest, SessionWalksArchiveInStoredOrder)
{
    SageArchiveService service(path_);
    ServiceSession session = service.openSession();
    EXPECT_EQ(session.remaining(), expected_.size());
    std::vector<Read> walked;
    while (session.hasNext())
        walked.push_back(session.next());
    expectSameReads(walked, expected_);
    EXPECT_EQ(session.remaining(), 0u);

    // On a single-core pool every trampoline prefers the client's
    // Normal-priority fetches, so the Background warms may all still
    // be queued here — drain them before reading the counters.
    service.pool().wait();
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.readsServed, expected_.size());
    // A sequential walk triggers next-chunk readahead warms, and the
    // drained warms find their chunks resident (or decode them for the
    // session to hit), so the lookup mix can't be all misses.
    EXPECT_GT(stats.readaheadWarms, 0u);
    EXPECT_GT(stats.cache.hitRate(), 0.0);
    EXPECT_EQ(stats.queueDepth, 0u);
}

TEST_F(ServiceTest, SessionBulkReadAndSeek)
{
    SageArchiveService service(path_);
    ServiceSession session = service.openSession();
    const std::vector<Read> bulk = session.read(150);
    expectSameReads(bulk, {expected_.begin(), expected_.begin() + 150});
    EXPECT_EQ(session.position(), 150u);

    session.seek(10);
    const std::vector<Read> after_seek = session.read(5);
    expectSameReads(after_seek,
                    {expected_.begin() + 10, expected_.begin() + 15});

    // Clamped read at the end of the archive.
    session.seek(expected_.size() - 3);
    EXPECT_EQ(session.read(100).size(), 3u);
    EXPECT_FALSE(session.hasNext());
}

TEST_F(ServiceTest, DnaOnlyServiceSkipsQuality)
{
    ServiceOptions options;
    options.dnaOnly = true;
    SageArchiveService service(path_, options);
    const std::vector<Read> got = service.readRange(0, 64);
    for (size_t i = 0; i < got.size(); i++) {
        EXPECT_EQ(got[i].bases, expected_[i].bases) << "read " << i;
        EXPECT_TRUE(got[i].quals.empty()) << "read " << i;
    }
}

TEST_F(ServiceTest, SharedExternalPoolAndWarm)
{
    ThreadPool pool(2);
    ServiceOptions options;
    options.pool = &pool;
    SageArchiveService service(path_, options);
    EXPECT_EQ(&service.pool(), &pool);

    service.warmChunk(2);
    service.warmChunk(2);              // Duplicate warm is coalesced.
    service.warmChunk(chunks_ + 100);  // Out of range: no-op.
    pool.wait();
    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.requestsByPriority[static_cast<size_t>(
                  RequestPriority::Background)],
              1u);
    // The warmed chunk now hits without a decode.
    const ChunkCacheStats before = service.stats().cache;
    service.readChunk(2);
    const ChunkCacheStats after = service.stats().cache;
    EXPECT_EQ(after.misses, before.misses);
    EXPECT_GT(after.hits, before.hits);
}

TEST_F(ServiceTest, DestructorDrainsOutstandingRequests)
{
    std::future<std::vector<Read>> abandoned;
    {
        SageArchiveService service(path_);
        abandoned = service.readRangeAsync(0, expected_.size());
        // Service destroyed with the request possibly still queued.
    }
    // The drain guarantees the request completed before teardown.
    expectSameReads(abandoned.get(), expected_);
}

TEST_F(ServiceTest, TinyCacheBudgetStillServesCorrectly)
{
    ServiceOptions options;
    options.cacheBudgetBytes = 1;  // Effectively uncacheable entries.
    options.cacheShards = 2;
    SageArchiveService service(path_, options);
    expectSameReads(service.readRange(0, service.readCount()),
                    expected_);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.residentBytes, 0u);
    EXPECT_GT(stats.cache.evictions + stats.cache.misses, 0u);
}

// ---------------------------------------------------------------------
// Acceptance stress test: many concurrent clients, mixed hot/cold
// access, tiny cache budget, FileSource-backed archive.
// ---------------------------------------------------------------------

TEST_F(ServiceTest, StressManyClientsByteIdenticalToSequentialReader)
{
    ServiceOptions options;
    // A budget of ~4 decoded chunks: hot chunks stay resident, the
    // sequential walks constantly evict — both paths exercised.
    options.cacheBudgetBytes =
        4 * DecodedChunk::residentBytes(
                {expected_.begin(), expected_.begin() + 64});
    options.cacheShards = 4;
    options.ownedPoolThreads = 8;
    SageArchiveService service(path_, options);

    constexpr size_t kClients = 20;  // >= 16 per acceptance criteria.
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    for (size_t t = 0; t < kClients; t++) {
        clients.emplace_back([&, t] {
            const auto check = [&](const std::vector<Read> &got,
                                   uint64_t first) {
                for (size_t i = 0; i < got.size(); i++) {
                    const Read &want =
                        expected_[static_cast<size_t>(first) + i];
                    if (got[i].bases != want.bases ||
                        got[i].quals != want.quals ||
                        got[i].header != want.header) {
                        failures++;
                        return;
                    }
                }
            };
            if (t % 4 == 0) {
                // Hot client: hammers the first two chunks.
                for (int it = 0; it < 20; it++)
                    check(service.readRange(0, 128), 0);
            } else if (t % 4 == 1) {
                // Session client: full sequential walk.
                ServiceSession session = service.openSession();
                std::vector<Read> walked;
                while (session.hasNext())
                    walked.push_back(session.next());
                check(walked, 0);
            } else if (t % 4 == 2) {
                // Strided cold client: chunk-grained random access.
                for (size_t c = t % chunks_, n = 0; n < chunks_;
                     n++, c = (c + 3) % chunks_) {
                    // chunkReads=64, so chunk c starts at read 64*c.
                    check(service.readChunk(c),
                          64 * static_cast<uint64_t>(c));
                }
            } else {
                // Async client: overlapping span futures.
                std::vector<
                    std::pair<uint64_t,
                              std::future<std::vector<Read>>>>
                    pending;
                for (uint64_t first = t; first + 97 < expected_.size();
                     first += 101) {
                    pending.emplace_back(
                        first, service.readRangeAsync(first, 97));
                }
                for (auto &[first, future] : pending)
                    check(future.get(), first);
            }
        });
    }
    for (auto &client : clients)
        client.join();

    EXPECT_EQ(failures.load(), 0);
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.cache.hitRate(), 0.0);    // Acceptance criterion.
    EXPECT_GT(stats.cache.evictions, 0u);     // Tiny budget really evicted.
    EXPECT_GT(stats.requests, kClients);
    EXPECT_GT(stats.readsServed, 0u);
    EXPECT_GT(stats.bytesServed, 0u);
    EXPECT_LE(stats.cache.residentBytes, options.cacheBudgetBytes);
    EXPECT_GT(stats.latencySamples, 0u);
    EXPECT_GE(stats.maxQueueDepth, 1u);
}

// ---------------------------------------------------------------------
// Service QoS: deadlines, cancellation, per-priority latency, and the
// consistent stats snapshot. Runs under the TSan preset in CI.
// ---------------------------------------------------------------------

using ServiceQosTest = ServiceTest;

TEST_F(ServiceQosTest, AlreadyExpiredDeadlineCompletesWithoutDecode)
{
    SageArchiveService service(path_);
    const uint64_t misses_before = service.stats().cache.misses;

    RequestOptions options;
    options.priority = RequestPriority::Interactive;
    options.deadline = RequestOptions::deadlineIn(-1.0);  // Past.
    const ReadResult result = service.readRange(0, 128, options);
    EXPECT_EQ(result.status, RequestStatus::Expired);
    EXPECT_TRUE(result.reads.empty());

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.misses, misses_before);  // No decode ran.
    EXPECT_EQ(stats.expired, 1u);
    EXPECT_EQ(stats.cancelled, 0u);
    EXPECT_EQ(stats.requests, 1u);  // Still counted as completed.
    EXPECT_EQ(stats.requestsByPriority[static_cast<size_t>(
                  RequestPriority::Interactive)],
              1u);
}

TEST_F(ServiceQosTest, PreCancelledRequestCompletesWithoutDecode)
{
    SageArchiveService service(path_);
    CancelSource source;
    source.cancel();
    RequestOptions options;
    options.cancel = source.token();
    const ReadResult result =
        service.readChunk(0, options);
    EXPECT_EQ(result.status, RequestStatus::Cancelled);
    EXPECT_TRUE(result.reads.empty());
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cache.misses, 0u);
    EXPECT_EQ(stats.cancelled, 1u);
}

TEST_F(ServiceQosTest, QosRequestWithoutPressureServesNormally)
{
    SageArchiveService service(path_);
    RequestOptions options;
    options.priority = RequestPriority::Interactive;
    options.deadline = RequestOptions::deadlineIn(600.0);
    CancelSource source;
    options.cancel = source.token();
    const ReadResult result = service.readRange(5, 130, options);
    ASSERT_EQ(result.status, RequestStatus::Ok);
    expectSameReads(result.reads,
                    {expected_.begin() + 5, expected_.begin() + 135});
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.expired, 0u);
    EXPECT_EQ(stats.cancelled, 0u);
    const LatencySummary &interactive =
        stats.latencyByPriority[static_cast<size_t>(
            RequestPriority::Interactive)];
    EXPECT_EQ(interactive.samples, 1u);
    EXPECT_GE(interactive.p99Seconds, 0.0);
}

TEST_F(ServiceQosTest, CancellationRacingCompletionNeverWedges)
{
    // Cancel concurrently with request execution, at every phase the
    // timing dice land on: queued (caught at dequeue), mid-assembly
    // (caught before a chunk decode), or already completed (Ok). The
    // request must always complete with a coherent status and the
    // counters must add up.
    SageArchiveService service(path_);
    constexpr int kRounds = 40;
    uint64_t ok_count = 0, cancelled_count = 0;
    for (int round = 0; round < kRounds; round++) {
        CancelSource source;
        RequestOptions options;
        options.cancel = source.token();
        auto future =
            service.readRangeAsync(0, expected_.size(), options);
        std::thread canceller([&] {
            if (round % 4 != 0) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50 * (round % 7)));
            }
            source.cancel();
        });
        ReadResult result = future.get();
        canceller.join();
        if (result.status == RequestStatus::Ok) {
            ok_count++;
            expectSameReads(result.reads, expected_);
        } else {
            EXPECT_EQ(result.status, RequestStatus::Cancelled);
            EXPECT_TRUE(result.reads.empty());
            cancelled_count++;
        }
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.cancelled, cancelled_count);
    EXPECT_EQ(ok_count + cancelled_count,
              static_cast<uint64_t>(kRounds));
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(kRounds));
}

TEST_F(ServiceQosTest, SessionCancellationStopsFetching)
{
    SageArchiveService service(path_);
    CancelSource source;
    RequestOptions options;
    options.cancel = source.token();
    ServiceSession session = service.openSession(options);

    // First chunk fetched fine; reads within it keep flowing even
    // after cancel (chunk-grained checks), but the next chunk fetch
    // stops the session.
    const std::vector<Read> first = session.read(10);
    ASSERT_EQ(first.size(), 10u);
    EXPECT_EQ(session.lastStatus(), RequestStatus::Ok);
    source.cancel();
    const std::vector<Read> rest = session.read(expected_.size());
    EXPECT_LT(rest.size(), expected_.size() - 10);  // Stopped short.
    EXPECT_EQ(session.lastStatus(), RequestStatus::Cancelled);
    // A cancelled session stays stopped.
    EXPECT_TRUE(session.read(64).empty());
    EXPECT_EQ(session.lastStatus(), RequestStatus::Cancelled);
    EXPECT_GT(service.stats().cancelled, 0u);
}

TEST_F(ServiceQosTest, ExpiredSessionReportsExpiry)
{
    SageArchiveService service(path_);
    RequestOptions options;
    options.deadline = RequestOptions::deadlineIn(-1.0);
    ServiceSession session = service.openSession(options);
    EXPECT_TRUE(session.read(64).empty());
    EXPECT_EQ(session.lastStatus(), RequestStatus::Expired);
}

TEST_F(ServiceQosTest, InteractiveOvertakesBacklogViaDeadline)
{
    // One worker, a pile of Normal full-archive requests, then an
    // interactive request with a deadline: whatever the queue does,
    // the interactive caller gets an answer (served or expired) in
    // bounded time instead of soaking behind the backlog.
    ServiceOptions service_options;
    service_options.ownedPoolThreads = 1;
    service_options.cacheBudgetBytes = 0;  // Every request decodes.
    SageArchiveService service(path_, service_options);
    std::vector<std::future<std::vector<Read>>> backlog;
    for (int i = 0; i < 16; i++) {
        backlog.push_back(
            service.readRangeAsync(0, expected_.size()));
    }
    RequestOptions options;
    options.priority = RequestPriority::Interactive;
    options.deadline = RequestOptions::deadlineIn(0.050);
    const Stopwatch clock;
    const ReadResult result = service.readRange(0, 64, options);
    const double waited = clock.seconds();
    if (result.status == RequestStatus::Ok) {
        expectSameReads(result.reads,
                        {expected_.begin(), expected_.begin() + 64});
    } else {
        EXPECT_EQ(result.status, RequestStatus::Expired);
        EXPECT_TRUE(result.reads.empty());
    }
    // Generous bound: the point is "not the whole backlog" — 16 full
    // walks take far longer than this on one worker.
    EXPECT_LT(waited, 5.0);
    for (auto &future : backlog)
        EXPECT_EQ(future.get().size(), expected_.size());
}

TEST_F(ServiceQosTest, StatsSnapshotIsConsistentUnderLoad)
{
    // The satellite bugfix: snapshots must be internally consistent
    // while the scheduler and request completions mutate concurrently
    // — requests == sum(by priority) == latency samples,
    // expired + cancelled <= requests, queueDepth <= maxQueueDepth,
    // monotone non-decreasing counters. Runs under TSan in CI.
    ServiceOptions service_options;
    service_options.ownedPoolThreads = 4;
    SageArchiveService service(path_, service_options);

    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::thread poller([&] {
        uint64_t last_requests = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const ServiceStats stats = service.stats();
            uint64_t by_priority = 0;
            for (uint64_t n : stats.requestsByPriority)
                by_priority += n;
            uint64_t by_latency = 0;
            for (const LatencySummary &summary :
                 stats.latencyByPriority)
                by_latency += summary.samples;
            if (by_priority != stats.requests ||
                by_latency != stats.requests ||
                stats.latencySamples != stats.requests ||
                stats.expired + stats.cancelled > stats.requests ||
                stats.queueDepth > stats.maxQueueDepth ||
                stats.requests < last_requests) {
                violations++;
            }
            last_requests = stats.requests;
        }
    });

    std::vector<std::thread> clients;
    for (int t = 0; t < 6; t++) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < 15; i++) {
                if (t % 3 == 0) {
                    CancelSource source;
                    RequestOptions options;
                    options.priority = RequestPriority::Interactive;
                    options.cancel = source.token();
                    auto future = service.readRangeAsync(
                        0, expected_.size(), options);
                    if (i % 2 == 0)
                        source.cancel();
                    future.get();
                } else if (t % 3 == 1) {
                    RequestOptions options;
                    options.deadline =
                        RequestOptions::deadlineIn(i % 2 == 0
                                                       ? 0.0005
                                                       : 600.0);
                    service.readRange(0, 200, options);
                } else {
                    service.readChunk(i % 5);
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    service.pool().wait();  // Drain readahead warms too.
    stop.store(true, std::memory_order_release);
    poller.join();

    EXPECT_EQ(violations.load(), 0);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.queueDepth, 0u);
    EXPECT_EQ(stats.executing, 0u);
    EXPECT_GT(stats.requests, 0u);
}

} // namespace
} // namespace sage
