/**
 * @file
 * Tests for the io/ subsystem: ByteSource/ByteSink implementations
 * (memory, file, striped) and container-directory parsing over a
 * source (extents, lazy loads, checksum verification, error paths).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "compress/streams.hh"
#include "io/byte_stream.hh"
#include "io/container.hh"
#include "io/file_stream.hh"
#include "io/striped.hh"
#include "util/rng.hh"

namespace sage {
namespace {

/** Deterministic pseudo-random payload. */
std::vector<uint8_t>
pattern(size_t size, uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<uint8_t> out(size);
    for (auto &byte : out)
        byte = static_cast<uint8_t>(rng.nextBelow(256));
    return out;
}

/** Unique scratch path under the gtest temp dir. */
std::string
scratchPath(const std::string &name)
{
    return ::testing::TempDir() + "sage_io_" + name;
}

// ---------------------------------------------------------------------
// Memory source/sink
// ---------------------------------------------------------------------

TEST(MemoryStream, SourceReadsAndViews)
{
    const std::vector<uint8_t> data = pattern(1000);
    MemorySource source(data);
    EXPECT_EQ(source.size(), data.size());
    EXPECT_EQ(source.readAll(), data);
    EXPECT_EQ(source.read(17, 100),
              std::vector<uint8_t>(data.begin() + 17,
                                   data.begin() + 117));
    ASSERT_NE(source.view(5, 10), nullptr);
    EXPECT_EQ(source.view(5, 10), data.data() + 5);
    EXPECT_EQ(source.view(995, 10), nullptr); // Past the end.
}

TEST(MemoryStream, OwningSourceOutlivesInput)
{
    std::vector<uint8_t> data = pattern(64);
    const std::vector<uint8_t> copy = data;
    MemorySource source(std::move(data));
    EXPECT_EQ(source.readAll(), copy);
}

TEST(MemoryStream, OutOfRangeReadDies)
{
    const std::vector<uint8_t> data = pattern(16);
    MemorySource source(data);
    uint8_t buf[8];
    EXPECT_EXIT({ source.readAt(12, buf, 8); },
                ::testing::ExitedWithCode(1), "past end");
}

TEST(MemoryStream, SinkAccumulates)
{
    MemorySink sink;
    const std::vector<uint8_t> data = pattern(300);
    sink.write(data.data(), 100);
    sink.write(data.data() + 100, 200);
    EXPECT_EQ(sink.tell(), 300u);
    EXPECT_EQ(sink.bytes(), data);
}

// ---------------------------------------------------------------------
// File source/sink
// ---------------------------------------------------------------------

TEST(FileStream, SinkSourceRoundTrip)
{
    const std::string path = scratchPath("roundtrip.bin");
    // Mix small appends with one oversized write to cross the sink's
    // internal buffer boundary.
    const std::vector<uint8_t> data = pattern(700 * 1024);
    {
        FileSink sink(path);
        sink.write(data.data(), 10);
        sink.write(data.data() + 10, 300 * 1024);
        sink.write(data.data() + 10 + 300 * 1024,
                   data.size() - 10 - 300 * 1024);
        EXPECT_EQ(sink.tell(), data.size());
        sink.close();
    }
    FileSource source(path);
    EXPECT_EQ(source.size(), data.size());
    EXPECT_EQ(source.readAll(), data);
    // Random-access reads: small (cached) and large (direct).
    EXPECT_EQ(source.read(123, 45),
              std::vector<uint8_t>(data.begin() + 123,
                                   data.begin() + 168));
    EXPECT_EQ(source.read(650 * 1024, 2048),
              std::vector<uint8_t>(data.begin() + 650 * 1024,
                                   data.begin() + 650 * 1024 + 2048));
    EXPECT_EQ(source.read(100 * 1024, 200 * 1024),
              std::vector<uint8_t>(data.begin() + 100 * 1024,
                                   data.begin() + 300 * 1024));
    // Files cannot hand out stable views.
    EXPECT_EQ(source.view(0, 16), nullptr);
    std::remove(path.c_str());
}

TEST(FileStream, ReadBatchCoalescesArbitraryExtents)
{
    const std::string path = scratchPath("batch.bin");
    const std::vector<uint8_t> data = pattern(512 * 1024);
    {
        FileSink sink(path);
        sink.writeBytes(data);
    }
    FileSource source(path);

    // Extents deliberately out of order, adjacent, gapped below and
    // above the coalescing threshold, duplicated, and empty — the
    // batched read must behave exactly like per-extent readAt().
    struct Case
    {
        uint64_t offset;
        size_t size;
    };
    const std::vector<Case> cases = {
        {400 * 1024, 1000},  // Far extent first (sorting exercised).
        {0, 13},
        {13, 100},           // Adjacent to the previous one.
        {200, 50},           // Small gap: same preadv run.
        {90 * 1024, 4096},   // Gap > 64 KB: its own run.
        {0, 13},             // Duplicate of an earlier extent.
        {512 * 1024 - 7, 7}, // Runs to EOF exactly.
        {1000, 0},           // Empty extent is skipped.
    };
    std::vector<std::vector<uint8_t>> buffers;
    std::vector<ByteSource::Extent> extents;
    for (const Case &c : cases) {
        buffers.emplace_back(c.size, 0xAA);
        extents.push_back({c.offset, buffers.back().data(), c.size});
    }
    source.readBatch(extents.data(), extents.size());
    for (size_t i = 0; i < cases.size(); i++) {
        const std::vector<uint8_t> want(
            data.begin() + static_cast<ptrdiff_t>(cases[i].offset),
            data.begin() +
                static_cast<ptrdiff_t>(cases[i].offset + cases[i].size));
        EXPECT_EQ(buffers[i], want) << "extent " << i;
    }

    // Many small extents overflowing one iovec budget still complete.
    std::vector<std::vector<uint8_t>> many(300,
                                           std::vector<uint8_t>(16));
    std::vector<ByteSource::Extent> many_extents;
    for (size_t i = 0; i < many.size(); i++)
        many_extents.push_back({i * 32, many[i].data(), 16});
    source.readBatch(many_extents.data(), many_extents.size());
    for (size_t i = 0; i < many.size(); i++) {
        const std::vector<uint8_t> want(
            data.begin() + static_cast<ptrdiff_t>(i * 32),
            data.begin() + static_cast<ptrdiff_t>(i * 32 + 16));
        EXPECT_EQ(many[i], want) << "extent " << i;
    }
    std::remove(path.c_str());
}

TEST(FileStream, ReadBatchPastEndDiesWithPath)
{
    const std::string path = scratchPath("batch_short.bin");
    {
        FileSink sink(path);
        const std::vector<uint8_t> data = pattern(64);
        sink.writeBytes(data);
    }
    FileSource source(path);
    uint8_t buf[32];
    ByteSource::Extent extent{40, buf, 32};
    EXPECT_EXIT({ source.readBatch(&extent, 1); },
                ::testing::ExitedWithCode(1), "batch_short.bin");
    std::remove(path.c_str());
}

TEST(MemoryStream, ReadBatchMatchesPerExtentReads)
{
    const std::vector<uint8_t> data = pattern(4096);
    MemorySource source(data);
    std::vector<uint8_t> a(100), b(5), c(256);
    std::vector<ByteSource::Extent> extents = {
        {50, a.data(), a.size()},
        {0, b.data(), b.size()},
        {4096 - 256, c.data(), c.size()},
    };
    source.readBatch(extents.data(), extents.size());
    EXPECT_EQ(a, source.read(50, 100));
    EXPECT_EQ(b, source.read(0, 5));
    EXPECT_EQ(c, source.read(4096 - 256, 256));
}

TEST(FileStream, MissingFileDiesWithPath)
{
    EXPECT_EXIT({ FileSource source("/nonexistent/sage-no-such.bin"); },
                ::testing::ExitedWithCode(1), "sage-no-such.bin");
}

TEST(FileStream, ReadPastEndDiesWithPath)
{
    const std::string path = scratchPath("short.bin");
    {
        FileSink sink(path);
        const std::vector<uint8_t> data = pattern(32);
        sink.writeBytes(data);
    }
    FileSource source(path);
    uint8_t buf[64];
    EXPECT_EXIT({ source.readAt(0, buf, 64); },
                ::testing::ExitedWithCode(1), "short.bin");
    std::remove(path.c_str());
}

TEST(FileStream, UnwritablePathDies)
{
    EXPECT_EXIT({ FileSink sink("/nonexistent/dir/out.bin"); },
                ::testing::ExitedWithCode(1), "out.bin");
}

// ---------------------------------------------------------------------
// Striped source/sink
// ---------------------------------------------------------------------

class StripedRoundTrip
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>>
{};

TEST_P(StripedRoundTrip, ShardsReassembleExactly)
{
    const size_t stripes = std::get<0>(GetParam());
    const uint64_t stripe_bytes = std::get<1>(GetParam());
    const std::vector<uint8_t> data = pattern(1000);

    const auto shards = stripeShards(data, stripes, stripe_bytes);
    ASSERT_EQ(shards.size(), stripes);
    uint64_t total = 0;
    for (const auto &shard : shards)
        total += shard.size();
    EXPECT_EQ(total, data.size());

    std::vector<MemorySource> sources;
    sources.reserve(stripes);
    for (const auto &shard : shards)
        sources.emplace_back(shard);
    std::vector<const ByteSource *> refs;
    for (const auto &src : sources)
        refs.push_back(&src);
    StripedSource striped(std::move(refs), stripe_bytes);

    EXPECT_EQ(striped.size(), data.size());
    EXPECT_EQ(striped.readAll(), data);
    // Spans crossing several stripe boundaries.
    for (uint64_t offset : {0ull, 1ull, 63ull, 500ull, 990ull}) {
        const size_t size =
            static_cast<size_t>(std::min<uint64_t>(37, 1000 - offset));
        EXPECT_EQ(striped.read(offset, size),
                  std::vector<uint8_t>(data.begin() + offset,
                                       data.begin() + offset + size))
            << "offset " << offset;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, StripedRoundTrip,
    ::testing::Values(std::make_tuple(size_t{1}, uint64_t{64}),
                      std::make_tuple(size_t{2}, uint64_t{64}),
                      std::make_tuple(size_t{4}, uint64_t{64}),
                      std::make_tuple(size_t{3}, uint64_t{7}),
                      std::make_tuple(size_t{4}, uint64_t{4096})));

TEST(Striped, SinkMatchesStripeShards)
{
    const std::vector<uint8_t> data = pattern(777);
    const auto expect = stripeShards(data, 3, 32);

    std::vector<MemorySink> sinks(3);
    std::vector<ByteSink *> refs = {&sinks[0], &sinks[1], &sinks[2]};
    StripedSink striped(std::move(refs), 32);
    // Write in awkward pieces; the split must be identical.
    striped.write(data.data(), 5);
    striped.write(data.data() + 5, 400);
    striped.write(data.data() + 405, data.size() - 405);
    EXPECT_EQ(striped.tell(), data.size());
    for (size_t d = 0; d < 3; d++)
        EXPECT_EQ(sinks[d].bytes(), expect[d]) << "shard " << d;
}

TEST(Striped, ViewWithinOneStripeIsZeroCopy)
{
    const std::vector<uint8_t> data = pattern(256);
    const auto shards = stripeShards(data, 2, 64);
    MemorySource a(shards[0]), b(shards[1]);
    StripedSource striped({&a, &b}, 64);
    // Inside stripe 1 (bytes 64..127 live on shard b at offset 0).
    const uint8_t *view = striped.view(70, 20);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(std::vector<uint8_t>(view, view + 20),
              std::vector<uint8_t>(data.begin() + 70,
                                   data.begin() + 90));
    // Crossing the 128-byte boundary cannot be a contiguous view.
    EXPECT_EQ(striped.view(120, 20), nullptr);
}

TEST(Striped, MismatchedShardSizesDie)
{
    const std::vector<uint8_t> data = pattern(300);
    auto shards = stripeShards(data, 2, 64);
    shards[1].push_back(0); // No valid 2-way layout has this split.
    MemorySource a(shards[0]), b(shards[1]);
    EXPECT_EXIT({ StripedSource striped({&a, &b}, 64); },
                ::testing::ExitedWithCode(1), "stripe shard");
}

// ---------------------------------------------------------------------
// Stream directory
// ---------------------------------------------------------------------

StreamBundle
makeBundle()
{
    StreamBundle bundle;
    bundle.stream("alpha") = pattern(100, 3);
    bundle.stream("beta") = {};
    bundle.stream("gamma") = pattern(5000, 4);
    return bundle;
}

TEST(StreamDirectory, ExtentsMatchSerializedBundle)
{
    const StreamBundle bundle = makeBundle();
    const std::vector<uint8_t> bytes = bundle.serialize();
    MemorySource source(bytes);

    const StreamDirectory dir = StreamDirectory::parse(source);
    EXPECT_EQ(dir.sizes(), bundle.sizes());
    EXPECT_TRUE(dir.has("beta"));
    EXPECT_FALSE(dir.has("delta"));
    EXPECT_EQ(dir.load(source, "alpha"), bundle.stream("alpha"));
    EXPECT_EQ(dir.load(source, "beta"), bundle.stream("beta"));
    EXPECT_EQ(dir.load(source, "gamma"), bundle.stream("gamma"));
}

TEST(StreamDirectory, WriteToMatchesSerialize)
{
    const StreamBundle bundle = makeBundle();
    MemorySink sink;
    const uint64_t written = bundle.writeTo(sink);
    EXPECT_EQ(written, sink.bytes().size());
    EXPECT_EQ(sink.bytes(), bundle.serialize());
}

TEST(StreamDirectory, ChecksumDetectsCorruption)
{
    const StreamBundle bundle = makeBundle();
    std::vector<uint8_t> bytes = bundle.serialize();
    EXPECT_TRUE(verifyArchiveChecksum(MemorySource(bytes)));
    bytes[bytes.size() / 2] ^= 0x10;
    EXPECT_FALSE(verifyArchiveChecksum(MemorySource(bytes)));
}

TEST(StreamDirectory, TruncatedContainerDies)
{
    const StreamBundle bundle = makeBundle();
    std::vector<uint8_t> bytes = bundle.serialize();
    bytes.resize(bytes.size() / 2);
    MemorySource source(bytes);
    EXPECT_EXIT({ StreamDirectory::parse(source); },
                ::testing::ExitedWithCode(1), ".*");
}

TEST(StreamDirectory, EmptyInputDies)
{
    const std::vector<uint8_t> empty;
    MemorySource source(empty);
    EXPECT_EXIT({ StreamDirectory::parse(source); },
                ::testing::ExitedWithCode(1), "too small");
}

} // namespace
} // namespace sage
