/**
 * @file
 * Property tests for the runtime-dispatched sequence kernels
 * (genomics/kernels.hh): the dispatched SIMD paths, the scalar LUT
 * baselines and the historical per-bit BitReader/BitWriter
 * implementations must agree byte for byte across every length from 0
 * to 257, unaligned buffer offsets, N/escape bases and all three
 * OutputFormats. The suite runs twice in CI — natively and under
 * SAGE_FORCE_SCALAR=1 — so both dispatch paths stay green.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "genomics/alphabet.hh"
#include "genomics/kernels.hh"
#include "util/bitio.hh"
#include "util/cpu.hh"
#include "util/rng.hh"

namespace sage {
namespace {

// ---------------------------------------------------------------------
// Historical per-bit reference implementations (the exact code the
// kernels replaced): the ground truth for byte-identity.
// ---------------------------------------------------------------------

std::vector<uint8_t>
perBitPack(std::string_view seq, unsigned width)
{
    BitWriter bw;
    for (char c : seq)
        bw.writeBits(baseToCode(c), width);
    return bw.take();
}

std::string
perBitUnpack(const std::vector<uint8_t> &packed, size_t num_bases,
             unsigned width)
{
    BitReader br(packed.data(), packed.size());
    std::string out;
    out.reserve(num_bases);
    for (size_t i = 0; i < num_bases; i++)
        out.push_back(codeToBase(static_cast<uint8_t>(br.readBits(width))));
    return out;
}

std::string
perCharReverseComplement(std::string_view seq)
{
    std::string out(seq.size(), 'N');
    for (size_t i = 0; i < seq.size(); i++)
        out[i] = complementBase(seq[seq.size() - 1 - i]);
    return out;
}

std::string
randomSeq(Rng &rng, size_t len, bool with_n)
{
    static const char acgt[] = "ACGT";
    static const char acgtn[] = "ACGTN";
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; i++)
        s.push_back(with_n ? acgtn[rng.nextBelow(5)]
                           : acgt[rng.nextBelow(4)]);
    return s;
}

TEST(KernelDispatch, ActiveLevelIsConsistent)
{
    // Under SAGE_FORCE_SCALAR the dispatch must be scalar; otherwise it
    // can be anything the hardware supports.
    if (simdForcedScalar()) {
        EXPECT_EQ(kernels::activeLevel(), SimdLevel::Scalar);
    }
    EXPECT_LE(static_cast<int>(kernels::activeLevel()),
              static_cast<int>(hardwareSimdLevel()));
    EXPECT_STREQ(kernels::activeLevelName(),
                 simdLevelName(kernels::activeLevel()));
}

TEST(Kernel2Bit, MatchesPerBitReferenceAcrossLengths)
{
    Rng rng(1);
    for (size_t len = 0; len <= 257; len++) {
        const std::string seq = randomSeq(rng, len, /*with_n=*/false);

        const std::vector<uint8_t> expect = perBitPack(seq, 2);
        std::vector<uint8_t> packed((len + 3) / 4);
        kernels::pack2bit(seq.data(), len, packed.data());
        ASSERT_EQ(packed, expect) << "len " << len;

        std::vector<uint8_t> scalar_packed((len + 3) / 4);
        kernels::scalar::pack2bit(seq.data(), len,
                                  scalar_packed.data());
        ASSERT_EQ(scalar_packed, expect) << "len " << len;

        std::string out(len, '\0');
        kernels::unpack2bit(packed.data(), packed.size(), len,
                            out.data());
        ASSERT_EQ(out, seq) << "len " << len;
        ASSERT_EQ(perBitUnpack(packed, len, 2), seq);

        std::string scalar_out(len, '\0');
        kernels::scalar::unpack2bit(packed.data(), packed.size(), len,
                                    scalar_out.data());
        ASSERT_EQ(scalar_out, seq) << "len " << len;
    }
}

TEST(Kernel3Bit, MatchesPerBitReferenceAcrossLengths)
{
    Rng rng(2);
    for (size_t len = 0; len <= 257; len++) {
        const std::string seq = randomSeq(rng, len, /*with_n=*/true);

        const std::vector<uint8_t> expect = perBitPack(seq, 3);
        std::vector<uint8_t> packed((3 * len + 7) / 8);
        kernels::pack3bit(seq.data(), len, packed.data());
        ASSERT_EQ(packed, expect) << "len " << len;

        std::string out(len, '\0');
        kernels::unpack3bit(packed.data(), packed.size(), len,
                            out.data());
        ASSERT_EQ(out, seq) << "len " << len;
        ASSERT_EQ(perBitUnpack(packed, len, 3), seq);

        std::string scalar_out(len, '\0');
        kernels::scalar::unpack3bit(packed.data(), packed.size(), len,
                                    scalar_out.data());
        ASSERT_EQ(scalar_out, seq) << "len " << len;
    }
}

TEST(Kernel2Bit, UnalignedBuffersDecodeIdentically)
{
    Rng rng(3);
    const std::string seq = randomSeq(rng, 193, /*with_n=*/false);
    std::vector<uint8_t> packed((seq.size() + 3) / 4);
    kernels::pack2bit(seq.data(), seq.size(), packed.data());

    for (size_t misalign = 0; misalign < 16; misalign++) {
        // Sequence at an arbitrary offset inside a larger buffer.
        std::string shifted(misalign, 'x');
        shifted += seq;
        std::vector<uint8_t> out(packed.size());
        kernels::pack2bit(shifted.data() + misalign, seq.size(),
                          out.data());
        ASSERT_EQ(out, packed) << "misalign " << misalign;

        // Packed bytes at an arbitrary offset likewise.
        std::vector<uint8_t> shifted_packed(misalign, 0xEE);
        shifted_packed.insert(shifted_packed.end(), packed.begin(),
                              packed.end());
        std::string bases(seq.size(), '\0');
        kernels::unpack2bit(shifted_packed.data() + misalign,
                            packed.size(), seq.size(), bases.data());
        ASSERT_EQ(bases, seq) << "misalign " << misalign;
    }
}

TEST(Kernel3Bit, UnalignedBuffersDecodeIdentically)
{
    // The shuffle-based 3-bit unpack loads 16 bytes per 6 consumed, so
    // both unaligned sources and near-end-of-buffer streams exercise
    // its bounds handling.
    Rng rng(7);
    const std::string seq = randomSeq(rng, 251, /*with_n=*/true);
    std::vector<uint8_t> packed((3 * seq.size() + 7) / 8);
    kernels::pack3bit(seq.data(), seq.size(), packed.data());

    for (size_t misalign = 0; misalign < 16; misalign++) {
        std::vector<uint8_t> shifted(misalign, 0xEE);
        shifted.insert(shifted.end(), packed.begin(), packed.end());
        std::string bases(seq.size(), '\0');
        kernels::unpack3bit(shifted.data() + misalign, packed.size(),
                            seq.size(), bases.data());
        ASSERT_EQ(bases, seq) << "misalign " << misalign;
    }

    // Exactly-sized stream (no slack after the last group): the SIMD
    // main loop must hand the tail to the scalar kernel instead of
    // loading past the end.
    for (size_t len : {8u, 16u, 24u, 40u, 48u, 250u, 251u}) {
        std::string sub = seq.substr(0, len);
        std::vector<uint8_t> tight((3 * len + 7) / 8);
        kernels::pack3bit(sub.data(), len, tight.data());
        std::string out(len, '\0');
        kernels::unpack3bit(tight.data(), tight.size(), len,
                            out.data());
        ASSERT_EQ(out, sub) << "len " << len;
    }
}

TEST(KernelRevComp, MatchesPerCharReferenceAcrossLengths)
{
    Rng rng(4);
    for (size_t len = 0; len <= 257; len++) {
        const std::string seq = randomSeq(rng, len, /*with_n=*/true);
        const std::string expect = perCharReverseComplement(seq);

        std::string out(len, '\0');
        kernels::reverseComplement(seq.data(), len, out.data());
        ASSERT_EQ(out, expect) << "len " << len;

        std::string scalar_out(len, '\0');
        kernels::scalar::reverseComplement(seq.data(), len,
                                           scalar_out.data());
        ASSERT_EQ(scalar_out, expect) << "len " << len;

        // Public wrappers agree, and in-place equals out-of-place.
        ASSERT_EQ(reverseComplement(seq), expect);
        std::string in_place = seq;
        reverseComplementInPlace(in_place);
        ASSERT_EQ(in_place, expect);
    }
}

TEST(KernelRevComp, ArbitraryBytesComplementToN)
{
    // complementBase semantics: anything that is not ACGT (either
    // case) complements to 'N' — including lowercase folds, spaces,
    // NULs, bytes with the high bit set, and 'Q' (whose low nibble
    // collides with 'A' — the folded-source check must reject it).
    Rng rng(5);
    for (size_t len : {0u, 1u, 15u, 16u, 17u, 64u, 255u, 257u}) {
        std::string seq(len, '\0');
        for (auto &c : seq)
            c = static_cast<char>(rng.nextBelow(256));
        const std::string expect = perCharReverseComplement(seq);
        std::string out(len, '\0');
        kernels::reverseComplement(seq.data(), len, out.data());
        ASSERT_EQ(out, expect) << "len " << len;
    }
    std::string tricky = "aAcCgGtTnNQq Ee\x01\x7f";
    tricky.push_back(static_cast<char>(0xFF));
    tricky.push_back('\0'); // Embedded NUL must complement to N too.
    tricky += "ACGT";
    const std::string expect = perCharReverseComplement(tricky);
    std::string out(tricky.size(), '\0');
    kernels::reverseComplement(tricky.data(), tricky.size(),
                               out.data());
    EXPECT_EQ(out, expect);
    EXPECT_EQ(reverseComplement(reverseComplement("ACGTN")), "ACGTN");
}

TEST(KernelAcgtOnly, MatchesScalarOnEveryPosition)
{
    // An N at every single position of a SIMD-block-sized buffer: the
    // vector path must spot it in the middle of a block, at block
    // boundaries and in the scalar tail.
    for (size_t len : {1u, 15u, 16u, 17u, 31u, 32u, 33u, 64u, 100u}) {
        const std::string clean(len, 'A');
        EXPECT_TRUE(kernels::isAcgtOnly(clean.data(), len));
        EXPECT_TRUE(isAcgtOnly(clean));
        for (size_t pos = 0; pos < len; pos++) {
            std::string dirty = clean;
            dirty[pos] = 'N';
            EXPECT_FALSE(kernels::isAcgtOnly(dirty.data(), len))
                << "len " << len << " pos " << pos;
            EXPECT_FALSE(kernels::scalar::isAcgtOnly(dirty.data(), len));
        }
    }
    EXPECT_TRUE(isAcgtOnly("acgtACGT"));
    EXPECT_FALSE(isAcgtOnly("ACGU"));
    EXPECT_FALSE(isAcgtOnly("ACG T"));
    EXPECT_TRUE(isAcgtOnly(""));
}

TEST(KernelCodes, BulkConversionsRoundTrip)
{
    const std::string bases = "ACGTNacgtnXYZ";
    std::vector<uint8_t> codes(bases.size());
    kernels::basesToCodes(bases.data(), bases.size(), codes.data());
    for (size_t i = 0; i < bases.size(); i++)
        EXPECT_EQ(codes[i], baseToCode(bases[i])) << "i " << i;

    std::string back(bases.size(), '\0');
    kernels::codesToBases(codes.data(), codes.size(), back.data());
    for (size_t i = 0; i < bases.size(); i++)
        EXPECT_EQ(back[i], codeToBase(codes[i])) << "i " << i;
}

TEST(KernelCodes, FindInvalidBaseAcceptsSequenceCharacters)
{
    const std::string ok = "ACGTNRYSWKMBDHVacgtn.-*";
    EXPECT_EQ(kernels::findInvalidBase(ok.data(), ok.size()),
              ok.size());
    const std::string bad = std::string("ACGT") + '\x07' + "ACGT";
    EXPECT_EQ(kernels::findInvalidBase(bad.data(), bad.size()), 4u);
    EXPECT_EQ(kernels::findInvalidBase(nullptr, 0), 0u);
}

TEST(KernelDeath, TwoBitPackRejectsNonAcgt)
{
    const std::string seq(33, 'N');
    std::vector<uint8_t> out((seq.size() + 3) / 4);
    EXPECT_DEATH(kernels::pack2bit(seq.data(), seq.size(), out.data()),
                 "ACGT-only");
    EXPECT_DEATH(packSequence("ACGTN", OutputFormat::TwoBit),
                 "ACGT-only");
}

TEST(KernelFormats, PackSequenceRoundTripsAllFormats)
{
    Rng rng(6);
    for (size_t len = 0; len <= 257; len += 7) {
        for (OutputFormat fmt : {OutputFormat::Ascii,
                                 OutputFormat::TwoBit,
                                 OutputFormat::ThreeBit}) {
            const bool with_n = fmt != OutputFormat::TwoBit;
            const std::string seq = randomSeq(rng, len, with_n);
            const auto packed = packSequence(seq, fmt);
            const size_t expect_bytes = fmt == OutputFormat::Ascii
                ? len
                : fmt == OutputFormat::TwoBit ? (len + 3) / 4
                                              : (3 * len + 7) / 8;
            ASSERT_EQ(packed.size(), expect_bytes);
            ASSERT_EQ(unpackSequence(packed, len, fmt), seq)
                << "len " << len;
        }
    }
}

} // namespace
} // namespace sage
