/**
 * @file
 * Tests that the synthetic datasets actually exhibit the statistical
 * properties the paper's design exploits (Properties 1-6) — this is
 * what justifies substituting synthesis for the paper's SRA downloads.
 */

#include <gtest/gtest.h>

#include "genomics/alphabet.hh"
#include "simgen/synthesize.hh"

namespace sage {
namespace {

TEST(Simgen, DeterministicInSeed)
{
    const DatasetSpec spec = makeTinySpec(false);
    const SimulatedDataset a = synthesizeDataset(spec);
    const SimulatedDataset b = synthesizeDataset(spec);
    ASSERT_EQ(a.readSet.reads.size(), b.readSet.reads.size());
    for (size_t i = 0; i < a.readSet.reads.size(); i++)
        EXPECT_EQ(a.readSet.reads[i].bases, b.readSet.reads[i].bases);
    EXPECT_EQ(a.reference, b.reference);
}

TEST(Simgen, DepthReached)
{
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 6.0;
    const SimulatedDataset ds = synthesizeDataset(spec);
    const double depth =
        static_cast<double>(ds.readSet.totalBases()) / ds.donor.size();
    EXPECT_GE(depth, 5.8);
    EXPECT_LE(depth, 6.5);
}

TEST(Simgen, ShortReadsHaveFixedLength)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    size_t modal = 0;
    for (const auto &read : ds.readSet.reads) {
        if (read.bases.size() == makeTinySpec(false).sequencer.readLength)
            modal++;
    }
    // Clips and N blocks may perturb a few reads.
    EXPECT_GT(modal, ds.readSet.reads.size() * 9 / 10);
}

TEST(Simgen, LongReadLengthsVary)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    size_t min_len = SIZE_MAX, max_len = 0;
    for (const auto &read : ds.readSet.reads) {
        min_len = std::min(min_len, read.bases.size());
        max_len = std::max(max_len, read.bases.size());
    }
    EXPECT_LT(min_len * 2, max_len) << "long reads should spread widely";
}

TEST(Simgen, QualityMatchesLength)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(true));
    for (const auto &read : ds.readSet.reads)
        ASSERT_EQ(read.quals.size(), read.bases.size());
}

TEST(Simgen, QualityAlphabetIsSmall)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    std::set<char> alphabet;
    for (const auto &read : ds.readSet.reads)
        for (char c : read.quals)
            alphabet.insert(c);
    EXPECT_LE(alphabet.size(), 16u) << "binned qualities expected";
}

TEST(Simgen, ShortReadsMostlyCleanPropertyTwo)
{
    // Property 2: with ~0.1% error and low variant density, a large
    // fraction of 150 bp reads should be exact copies of the donor.
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    size_t exact = 0;
    for (size_t i = 0; i < ds.readSet.reads.size(); i++) {
        const auto &read = ds.readSet.reads[i];
        const auto &truth = ds.truth[i];
        std::string expect = ds.donor.substr(
            truth.genomePos, read.bases.size());
        if (truth.reverse)
            expect = reverseComplement(expect);
        exact += expect == read.bases;
    }
    EXPECT_GT(exact, ds.readSet.reads.size() / 2);
}

TEST(Simgen, ChimerasAppearInLongReads)
{
    DatasetSpec spec = makeTinySpec(true);
    spec.sequencer.chimeraProb = 0.3;
    const SimulatedDataset ds = synthesizeDataset(spec);
    size_t chimeric = 0;
    for (const auto &truth : ds.truth)
        chimeric += truth.chimeric;
    EXPECT_GT(chimeric, 0u);
}

TEST(Simgen, AllPresetsProduceData)
{
    for (const DatasetSpec &spec : allReadSetSpecs()) {
        DatasetSpec small = spec;
        small.genome.referenceLength = 1 << 16;
        small.depth = 2.0;
        const SimulatedDataset ds = synthesizeDataset(small);
        EXPECT_GT(ds.readSet.reads.size(), 0u) << spec.name;
        EXPECT_EQ(ds.readSet.technology == Technology::LongNoisy,
                  spec.sequencer.longRead)
            << spec.name;
    }
}

TEST(Simgen, DonorDiffersFromReferenceButSimilar)
{
    const DatasetSpec spec = makeTinySpec(false);
    const SimulatedDataset ds = synthesizeDataset(spec);
    // Similar lengths (indels shift slightly).
    const double len_ratio = static_cast<double>(ds.donor.size())
        / static_cast<double>(ds.reference.size());
    EXPECT_NEAR(len_ratio, 1.0, 0.02);
    // But not identical (variants applied).
    EXPECT_NE(ds.donor, ds.reference);
}

} // namespace
} // namespace sage
