/**
 * @file
 * Tests for the packbit lightweight baseline (DNABIT-class tool,
 * paper §3.2 footnote 5) plus seed-sweep property tests over the whole
 * SAGe pipeline: losslessness must hold for arbitrary seeds, depths
 * and technologies, not just the fixed test specs.
 */

#include <gtest/gtest.h>

#include "compress/packbit.hh"
#include "compress/springlike.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

// ---------------------------------------------------------------------
// packbit
// ---------------------------------------------------------------------

TEST(Packbit, RoundTripShort)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const auto archive = packbit::compress(ds.readSet);
    const ReadSet back = packbit::decompress(archive);
    ASSERT_EQ(back.reads.size(), ds.readSet.reads.size());
    for (size_t i = 0; i < back.reads.size(); i++) {
        EXPECT_EQ(back.reads[i].bases, ds.readSet.reads[i].bases);
        EXPECT_EQ(back.reads[i].quals, ds.readSet.reads[i].quals);
        EXPECT_EQ(back.reads[i].header, ds.readSet.reads[i].header);
    }
}

TEST(Packbit, RoundTripWithNAndRuns)
{
    ReadSet rs;
    Read read;
    read.header = "r";
    read.bases = "AAAAAAAACGTNNNNACGTACGTTTTTTTTTTTTTTTTTTTTTTG";
    read.quals = std::string(read.bases.size(), 'I');
    rs.reads.push_back(read);
    const auto archive = packbit::compress(rs);
    const ReadSet back = packbit::decompress(archive);
    EXPECT_EQ(back.reads[0].bases, read.bases);
}

TEST(Packbit, DnaNearTwoBitFloor)
{
    // The design point: lightweight but stuck near 2 bits/base.
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const auto archive = packbit::compress(ds.readSet);
    const uint64_t dna = packbit::dnaBytes(archive);
    const double bits_per_base = 8.0 * static_cast<double>(dna)
        / static_cast<double>(ds.readSet.totalBases());
    EXPECT_GT(bits_per_base, 1.5);
    EXPECT_LT(bits_per_base, 3.2);
}

TEST(Packbit, MuchWorseRatioThanConsensusTools)
{
    // Paper §3.2: this tool class compresses ~5x worse than
    // consensus-based genomic compressors on DNA.
    DatasetSpec spec = makeTinySpec(false);
    spec.depth = 8.0;
    const SimulatedDataset ds = synthesizeDataset(spec);
    ThreadPool pool;
    const auto pb = packbit::compress(ds.readSet);
    const SageArchive sage = sageCompress(ds.readSet, ds.reference, {},
                                          &pool);
    EXPECT_GT(packbit::dnaBytes(pb), sage.dnaBytes * 3);
}

TEST(Packbit, CorruptionDetected)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    auto archive = packbit::compress(ds.readSet);
    archive[archive.size() / 3] ^= 0x10;
    EXPECT_DEATH({ ReadSet rs = packbit::decompress(archive); (void)rs; },
                 ".*");
}

// ---------------------------------------------------------------------
// Seed-sweep property tests (the losslessness invariant)
// ---------------------------------------------------------------------

struct SweepParam
{
    uint64_t seed;
    bool longRead;
    double depth;
};

class LosslessSweep : public ::testing::TestWithParam<SweepParam>
{};

TEST_P(LosslessSweep, SageRoundTripIsLossless)
{
    const SweepParam param = GetParam();
    DatasetSpec spec = makeTinySpec(param.longRead);
    spec.seed = param.seed;
    spec.depth = param.depth;
    spec.genome.referenceLength = 1 << 15;
    const SimulatedDataset ds = synthesizeDataset(spec);

    ThreadPool pool;
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, {}, &pool);
    const ReadSet back = sageDecompress(archive.bytes);

    std::multiset<std::pair<std::string, std::string>> want, got;
    for (const auto &read : ds.readSet.reads)
        want.emplace(read.bases, read.quals);
    for (const auto &read : back.reads)
        got.emplace(read.bases, read.quals);
    EXPECT_EQ(want, got) << "seed=" << param.seed
                         << " long=" << param.longRead
                         << " depth=" << param.depth;
}

TEST_P(LosslessSweep, SpringLikeRoundTripIsLossless)
{
    const SweepParam param = GetParam();
    DatasetSpec spec = makeTinySpec(param.longRead);
    spec.seed = param.seed ^ 0x9999;
    spec.depth = param.depth;
    spec.genome.referenceLength = 1 << 15;
    const SimulatedDataset ds = synthesizeDataset(spec);

    ThreadPool pool;
    const auto result =
        springlike::compress(ds.readSet, ds.reference, {}, &pool);
    const auto back = springlike::decompress(result.archive, &pool);

    std::multiset<std::string> want, got;
    for (const auto &read : ds.readSet.reads)
        want.insert(read.bases);
    for (const auto &read : back.readSet.reads)
        got.insert(read.bases);
    EXPECT_EQ(want, got);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LosslessSweep,
    ::testing::Values(SweepParam{1, false, 2.0},
                      SweepParam{2, false, 6.0},
                      SweepParam{3, false, 1.0},
                      SweepParam{4, true, 2.0},
                      SweepParam{5, true, 4.0},
                      SweepParam{6, true, 1.0},
                      SweepParam{7, false, 4.0},
                      SweepParam{8, true, 3.0}));

} // namespace
} // namespace sage
