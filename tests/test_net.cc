/**
 * @file
 * Tests for the network front end (src/net/): wire-protocol encode /
 * decode round trips and malformed-frame rejection, the
 * MultiArchiveService registry (byte identity across archives, LRU
 * eviction past the open cap with transparent reopen, admission
 * control shed, server-side fault injection), and the epoll server
 * over real loopback sockets — multi-connection byte identity vs a
 * sequential SageReader, Overloaded / Expired / error replies that
 * leave the connection usable, corrupt-archive isolation between
 * connections, and hostile-bytes handling. Runs under the ASan/UBSan
 * and TSan presets in CI.
 *
 * The resilience layer rides the same fixtures: protocol-v2 frame
 * integrity (version byte + CRC-32, verifyFrame), the timer wheel,
 * connection hygiene (idle / header-read timeouts, max-connection
 * shed), graceful drain, and the ResilientClient driven through a
 * ChaosProxy — byte identity against the sequential reader must
 * survive deterministic resets, corruption, stalls and splits.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>

#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

using net::ChaosConfig;
using net::ChaosProxy;
using net::Client;
using net::ClientOptions;
using net::MsgType;
using net::OpenReply;
using net::ReplyHeader;
using net::RequestFrame;
using net::ResilientClient;
using net::ResilientClientOptions;
using net::Server;
using net::ServerOptions;
using net::WireServerStats;
using net::WireStatus;

/** Scratch path unique to the running test: ctest runs every test as
 *  its own parallel process, so fixture files must not collide. */
std::string
perTestScratchPath(const std::string &suffix)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "sage_net_" +
        std::string(info->test_suite_name()) + "_" + info->name() +
        "_" + suffix;
}

/** Element-wise equality including headers. */
void
expectSameReads(const std::vector<Read> &a, const std::vector<Read> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].bases, b[i].bases) << "read " << i;
        ASSERT_EQ(a[i].quals, b[i].quals) << "read " << i;
        ASSERT_EQ(a[i].header, b[i].header) << "read " << i;
    }
}

/** One archive of a synthetic corpus plus its stored-order truth. */
struct CorpusArchive
{
    std::string name;
    std::vector<Read> expected;
    size_t chunks = 0;
};

/** Synthesize @p count distinct archives under @p dir (created here)
 *  with many small chunks each, returning per-archive ground truth
 *  from a plain sequential reader. */
std::vector<CorpusArchive>
makeCorpus(const std::string &dir, size_t count)
{
    ::mkdir(dir.c_str(), 0755);
    std::vector<CorpusArchive> corpus;
    for (size_t i = 0; i < count; i++) {
        DatasetSpec spec = makeTinySpec(false);
        spec.seed += 17 * (i + 1);  // Distinct reads per archive.
        const SimulatedDataset ds = synthesizeDataset(spec);
        SageConfig config;
        config.chunkReads = 64;  // Many small chunks.
        config.preserveOrder = false;
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config);

        CorpusArchive entry;
        entry.name = "rs" + std::to_string(i) + ".sage";
        const std::string path = dir + "/" + entry.name;
        {
            FileSink sink(path);
            sink.writeBytes(archive.bytes);
        }
        SageReader reader(path);
        entry.chunks = reader.chunkCount();
        for (size_t c = 0; c < entry.chunks; c++) {
            const std::vector<Read> reads = reader.readChunk(c);
            entry.expected.insert(entry.expected.end(), reads.begin(),
                                  reads.end());
        }
        corpus.push_back(std::move(entry));
    }
    return corpus;
}

void
removeCorpus(const std::string &dir,
             const std::vector<CorpusArchive> &corpus)
{
    for (const CorpusArchive &entry : corpus)
        std::remove((dir + "/" + entry.name).c_str());
    ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------
// Protocol round trips
// ---------------------------------------------------------------------

/** Integrity-check @p frame (version byte + CRC, as both peers do)
 *  and return the body size with the trailing CRC stripped. */
size_t
verifiedBodySize(const std::vector<uint8_t> &frame)
{
    size_t body = 0;
    const net::FrameVerdict verdict = net::verifyFrame(
        frame.data() + net::kLenBytes, frame.size() - net::kLenBytes,
        &body);
    EXPECT_EQ(verdict, net::FrameVerdict::Ok)
        << net::frameVerdictName(verdict);
    return body;
}

/** Parse @p frame skipping its length prefix, asserting the prefix
 *  matches the body size and the v2 CRC verifies. */
StatusOr<RequestFrame>
parseRequest(const std::vector<uint8_t> &frame)
{
    EXPECT_GE(frame.size(), net::kLenBytes);
    uint32_t len = 0;
    std::memcpy(&len, frame.data(), sizeof len);
    EXPECT_EQ(static_cast<size_t>(len) + net::kLenBytes, frame.size());
    return net::parseRequestFrame(frame.data() + net::kLenBytes,
                                  verifiedBodySize(frame));
}

TEST(NetProtocol, OpenRequestRoundTrip)
{
    std::vector<uint8_t> frame;
    net::appendOpenRequest(frame, 42, "dir/reads.sage",
                           RequestPriority::Interactive, 250);
    const StatusOr<RequestFrame> parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::Open);
    EXPECT_EQ(parsed->priority, RequestPriority::Interactive);
    EXPECT_EQ(parsed->requestId, 42u);
    EXPECT_EQ(parsed->deadlineMs, 250u);
    EXPECT_EQ(parsed->name, "dir/reads.sage");
}

TEST(NetProtocol, ReadRequestsRoundTrip)
{
    std::vector<uint8_t> frame;
    net::appendReadRangeRequest(frame, 7, 3, 1000, 64,
                                RequestPriority::Background, 0);
    StatusOr<RequestFrame> parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::ReadRange);
    EXPECT_EQ(parsed->priority, RequestPriority::Background);
    EXPECT_EQ(parsed->requestId, 7u);
    EXPECT_EQ(parsed->archive, 3u);
    EXPECT_EQ(parsed->first, 1000u);
    EXPECT_EQ(parsed->count, 64u);

    frame.clear();
    net::appendReadChunkRequest(frame, 8, 2, 5,
                                RequestPriority::Normal, 10);
    parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::ReadChunk);
    EXPECT_EQ(parsed->archive, 2u);
    EXPECT_EQ(parsed->chunk, 5u);
    EXPECT_EQ(parsed->deadlineMs, 10u);

    frame.clear();
    net::appendStatRequest(frame, 9, net::kStatServer);
    parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::Stat);
    EXPECT_EQ(parsed->archive, net::kStatServer);

    frame.clear();
    net::appendCloseRequest(frame, 10, 1);
    parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::Close);
    EXPECT_EQ(parsed->archive, 1u);
}

TEST(NetProtocol, ReadReplyRoundTrip)
{
    std::vector<Read> reads(3);
    reads[0].header = "@r0";
    reads[0].bases = "ACGTACGT";
    reads[0].quals = "IIIIIIII";
    reads[1].bases = "GGGG";  // No header, no quality.
    reads[2].header = "@r2 with spaces";
    reads[2].bases = std::string(1000, 'A');
    reads[2].quals = std::string(1000, '#');

    std::vector<uint8_t> frame;
    net::appendReadReply(frame, MsgType::ReadRange, 77, reads);

    const size_t body = verifiedBodySize(frame);
    const StatusOr<ReplyHeader> header = net::parseReplyHeader(
        frame.data() + net::kLenBytes, body);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->type, MsgType::ReadRange);
    EXPECT_EQ(header->status, WireStatus::Ok);
    EXPECT_EQ(header->requestId, 77u);

    const size_t skip = net::kLenBytes + net::kReplyHeaderBytes;
    const StatusOr<std::vector<Read>> back =
        net::parseReadReplyPayload(frame.data() + skip,
                                   body - net::kReplyHeaderBytes);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    expectSameReads(*back, reads);
}

TEST(NetProtocol, OpenStatErrorRepliesRoundTrip)
{
    OpenReply meta;
    meta.archive = 5;
    meta.readCount = 12345;
    meta.chunkCount = 77;
    std::vector<uint8_t> frame;
    net::appendOpenReply(frame, 11, MsgType::Open, meta);
    const size_t skip = net::kLenBytes + net::kReplyHeaderBytes;
    StatusOr<OpenReply> open = net::parseOpenReplyPayload(
        frame.data() + skip,
        verifiedBodySize(frame) - net::kReplyHeaderBytes);
    ASSERT_TRUE(open.ok()) << open.status().toString();
    EXPECT_EQ(open->archive, 5u);
    EXPECT_EQ(open->readCount, 12345u);
    EXPECT_EQ(open->chunkCount, 77u);

    WireServerStats stats;
    stats.openArchives = 2;
    stats.knownArchives = 9;
    stats.opens = 10;
    stats.reopens = 3;
    stats.evictions = 4;
    stats.admitted = 1000;
    stats.overloaded = 17;
    stats.readsServed = 123456;
    stats.bytesServed = 1ull << 33;
    stats.cacheBytesReserved = 1 << 20;
    stats.cacheBudgetBytes = 1 << 24;
    stats.queueDepth = 6;
    frame.clear();
    net::appendStatReply(frame, 12, stats);
    const StatusOr<WireServerStats> back = net::parseStatReplyPayload(
        frame.data() + skip,
        verifiedBodySize(frame) - net::kReplyHeaderBytes);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back->knownArchives, 9u);
    EXPECT_EQ(back->reopens, 3u);
    EXPECT_EQ(back->overloaded, 17u);
    EXPECT_EQ(back->bytesServed, 1ull << 33);
    EXPECT_EQ(back->queueDepth, 6u);

    frame.clear();
    net::appendErrorReply(frame, MsgType::ReadRange, 13,
                          WireStatus::Overloaded, "queue full");
    const size_t error_body = verifiedBodySize(frame);
    const StatusOr<ReplyHeader> header = net::parseReplyHeader(
        frame.data() + net::kLenBytes, error_body);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->status, WireStatus::Overloaded);
    const StatusOr<std::string> message = net::parseErrorMessage(
        frame.data() + skip, error_body - net::kReplyHeaderBytes);
    ASSERT_TRUE(message.ok()) << message.status().toString();
    EXPECT_EQ(*message, "queue full");
}

TEST(NetProtocol, MalformedRequestsRejected)
{
    // Every strict prefix of a valid frame must fail cleanly. The
    // parsers run on CRC-stripped bodies (verifyFrame strips it),
    // so drop the trailing CRC before slicing.
    std::vector<uint8_t> frame;
    net::appendReadRangeRequest(frame, 1, 0, 0, 4,
                                RequestPriority::Normal, 0);
    const uint8_t *body = frame.data() + net::kLenBytes;
    const size_t size =
        frame.size() - net::kLenBytes - net::kFrameCrcBytes;
    for (size_t cut = 0; cut < size; cut++)
        EXPECT_FALSE(net::parseRequestFrame(body, cut).ok())
            << "prefix of " << cut << " bytes parsed";

    // Trailing garbage is rejected, not ignored.
    std::vector<uint8_t> padded(body, body + size);
    padded.push_back(0);
    EXPECT_FALSE(
        net::parseRequestFrame(padded.data(), padded.size()).ok());

    // Unknown message type.
    std::vector<uint8_t> bad(body, body + size);
    bad[0] = 0;
    EXPECT_FALSE(net::parseRequestFrame(bad.data(), bad.size()).ok());
    bad[0] = 99;
    EXPECT_FALSE(net::parseRequestFrame(bad.data(), bad.size()).ok());

    // Out-of-range priority class.
    bad = std::vector<uint8_t>(body, body + size);
    bad[1] = static_cast<uint8_t>(kRequestPriorityCount);
    EXPECT_FALSE(net::parseRequestFrame(bad.data(), bad.size()).ok());

    // OPEN whose name length field exceeds the actual bytes.
    frame.clear();
    net::appendOpenRequest(frame, 2, "abc", RequestPriority::Normal, 0);
    std::vector<uint8_t> lying(frame.begin() + net::kLenBytes,
                               frame.end() - net::kFrameCrcBytes);
    lying[net::kRequestHeaderBytes] = 200;  // nameLen u16 low byte.
    EXPECT_FALSE(
        net::parseRequestFrame(lying.data(), lying.size()).ok());
}

TEST(NetProtocol, HostileReadReplyCountRejected)
{
    // A reply claiming 2^32-1 reads in a 12-byte payload must fail
    // before any allocation, not OOM.
    std::vector<uint8_t> payload(12, 0xFF);
    EXPECT_FALSE(
        net::parseReadReplyPayload(payload.data(), payload.size())
            .ok());
}

TEST(NetProtocol, WireStatusMapsLosslessly)
{
    EXPECT_EQ(net::wireStatusFromStatus(Status()), WireStatus::Ok);
    EXPECT_EQ(net::wireStatusFromStatus(Status::corrupt("x")),
              WireStatus::Corrupt);
    EXPECT_EQ(net::wireStatusFromStatus(Status::truncated("x")),
              WireStatus::Truncated);
    EXPECT_EQ(net::wireStatusFromStatus(Status::outOfRange("x")),
              WireStatus::OutOfRange);
    EXPECT_EQ(net::wireStatusFromRequest(RequestStatus::Expired,
                                         Status()),
              WireStatus::Expired);
    EXPECT_EQ(net::wireStatusFromRequest(RequestStatus::Cancelled,
                                         Status()),
              WireStatus::Cancelled);
    EXPECT_EQ(net::wireStatusFromRequest(RequestStatus::Error,
                                         Status::ioError("disk")),
              WireStatus::IoError);
    EXPECT_TRUE(
        net::statusFromWire(WireStatus::Ok, "").ok());
    EXPECT_FALSE(
        net::statusFromWire(WireStatus::Overloaded, "shed").ok());
}

TEST(NetProtocol, FrameIntegrityVerdicts)
{
    std::vector<uint8_t> frame;
    net::appendOpenRequest(frame, 42, "reads.sage",
                           RequestPriority::Normal, 0);
    const uint8_t *body = frame.data() + net::kLenBytes;
    const size_t size = frame.size() - net::kLenBytes;

    // Pristine frame: Ok, body size excludes the CRC.
    size_t body_size = 0;
    EXPECT_EQ(net::verifyFrame(body, size, &body_size),
              net::FrameVerdict::Ok);
    EXPECT_EQ(body_size, size - net::kFrameCrcBytes);

    // Any single flipped bit anywhere — header, payload, or the CRC
    // itself — must be caught.
    for (size_t at = 0; at < size; at++) {
        if (at == 2)
            continue;  // The version byte reports VersionMismatch.
        std::vector<uint8_t> damaged(body, body + size);
        damaged[at] ^= 0x01;
        EXPECT_EQ(net::verifyFrame(damaged.data(), damaged.size(),
                                   nullptr),
                  net::FrameVerdict::CrcMismatch)
            << "flip at byte " << at;
    }

    // A v1 peer (version byte 0) is a version mismatch, never
    // misreported as corruption — checked before the CRC.
    std::vector<uint8_t> v1(body, body + size);
    v1[2] = 0;
    EXPECT_EQ(net::verifyFrame(v1.data(), v1.size(), nullptr),
              net::FrameVerdict::VersionMismatch);

    // Runts.
    EXPECT_EQ(net::verifyFrame(body, 0, nullptr),
              net::FrameVerdict::TooShort);
    EXPECT_EQ(net::verifyFrame(body, 2, nullptr),
              net::FrameVerdict::TooShort);
    EXPECT_EQ(net::verifyFrame(body, net::kReplyHeaderBytes, nullptr),
              net::FrameVerdict::TooShort);

    // The legacy (v1-shaped) error reply a version-mismatched peer is
    // sent: version byte 0, no trailing CRC, parseable by the v1
    // header/message parsers.
    std::vector<uint8_t> legacy;
    net::appendLegacyErrorReply(legacy, MsgType::Open, 7,
                                WireStatus::VersionMismatch,
                                "speak v2");
    const uint8_t *reply = legacy.data() + net::kLenBytes;
    const size_t reply_size = legacy.size() - net::kLenBytes;
    EXPECT_EQ(reply[2], 0);
    EXPECT_EQ(net::verifyFrame(reply, reply_size, nullptr),
              net::FrameVerdict::VersionMismatch);
    const StatusOr<ReplyHeader> header =
        net::parseReplyHeader(reply, reply_size);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->status, WireStatus::VersionMismatch);
    EXPECT_EQ(header->requestId, 7u);
    const StatusOr<std::string> message = net::parseErrorMessage(
        reply + net::kReplyHeaderBytes,
        reply_size - net::kReplyHeaderBytes);
    ASSERT_TRUE(message.ok());
    EXPECT_EQ(*message, "speak v2");
}

TEST(NetProtocol, RetryableStatusClassification)
{
    // Retryable: the server shed or the transport hiccuped — the
    // same request can succeed on a retry / another connection.
    EXPECT_TRUE(net::wireStatusRetryable(WireStatus::Overloaded));
    EXPECT_TRUE(net::wireStatusRetryable(WireStatus::ShuttingDown));
    EXPECT_TRUE(net::wireStatusRetryable(WireStatus::IoError));
    EXPECT_TRUE(net::wireStatusRetryable(WireStatus::Exhausted));

    // Terminal: retrying re-reads the same bad bytes or repeats the
    // same bad request.
    EXPECT_FALSE(net::wireStatusRetryable(WireStatus::Ok));
    EXPECT_FALSE(net::wireStatusRetryable(WireStatus::Corrupt));
    EXPECT_FALSE(net::wireStatusRetryable(WireStatus::Truncated));
    EXPECT_FALSE(net::wireStatusRetryable(WireStatus::BadRequest));
    EXPECT_FALSE(net::wireStatusRetryable(WireStatus::OutOfRange));
    EXPECT_FALSE(
        net::wireStatusRetryable(WireStatus::UnknownArchive));
    EXPECT_FALSE(net::wireStatusRetryable(WireStatus::Expired));
    EXPECT_FALSE(net::wireStatusRetryable(WireStatus::Cancelled));
    EXPECT_FALSE(
        net::wireStatusRetryable(WireStatus::VersionMismatch));
    EXPECT_FALSE(
        net::wireStatusRetryable(WireStatus::ProtocolError));
}

// ---------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------

TEST(NetTimerWheel, FiresNearDeadlineAndNeverEarly)
{
    net::TimerWheel wheel(/*tick_ms=*/10, /*slots=*/8);
    EXPECT_TRUE(wheel.empty());

    wheel.schedule(1, 0);    // Next tick.
    wheel.schedule(2, 35);   // ~4 ticks out.
    wheel.schedule(3, 200);  // Beyond one revolution (8 * 10 ms).
    EXPECT_FALSE(wheel.empty());

    std::vector<uint64_t> due;
    wheel.advanceTo(9, due);  // Not a full tick yet.
    EXPECT_TRUE(due.empty());

    wheel.advanceTo(10, due);
    EXPECT_EQ(due, std::vector<uint64_t>({1}));

    // Advance in uneven jumps; id 2 fires in (35, 55], id 3 must sit
    // through a full revolution without firing early.
    due.clear();
    wheel.advanceTo(55, due);
    EXPECT_EQ(due, std::vector<uint64_t>({2}));
    due.clear();
    wheel.advanceTo(199, due);
    EXPECT_TRUE(due.empty()) << "beyond-revolution entry fired early";
    wheel.advanceTo(220, due);
    EXPECT_EQ(due, std::vector<uint64_t>({3}));
    EXPECT_TRUE(wheel.empty());

    // Duplicates are allowed and all fire (owners re-validate).
    wheel.schedule(9, 10);
    wheel.schedule(9, 10);
    due.clear();
    wheel.advanceTo(250, due);
    EXPECT_EQ(due.size(), 2u);
}

// ---------------------------------------------------------------------
// MultiArchiveService
// ---------------------------------------------------------------------

TEST(NetMultiArchive, ByteIdenticalAcrossArchives)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 3);

    {
        MultiArchiveOptions options;
        options.globalCacheBudgetBytes = 8 << 20;
        options.ownedPoolThreads = 2;
        MultiArchiveService service(dir, options);

        for (const CorpusArchive &entry : corpus) {
            const StatusOr<ArchiveMeta> meta = service.open(entry.name);
            ASSERT_TRUE(meta.ok()) << meta.status().toString();
            EXPECT_EQ(meta->readCount, entry.expected.size());
            EXPECT_EQ(meta->chunkCount, entry.chunks);

            // Whole archive, then unaligned spans, then one chunk.
            MultiArchiveService::SyncOutcome all =
                service.readRangeSync(meta->id, 0,
                                      meta->readCount);
            ASSERT_EQ(all.admission, Admission::Admitted);
            ASSERT_TRUE(all.result.ok())
                << all.result.error.toString();
            expectSameReads(all.result.reads, entry.expected);

            MultiArchiveService::SyncOutcome span =
                service.readRangeSync(meta->id, 63, 130);
            ASSERT_EQ(span.admission, Admission::Admitted);
            ASSERT_TRUE(span.result.ok());
            expectSameReads(
                span.result.reads,
                std::vector<Read>(entry.expected.begin() + 63,
                                  entry.expected.begin() + 193));

            MultiArchiveService::SyncOutcome chunk =
                service.readChunkSync(meta->id, 1);
            ASSERT_EQ(chunk.admission, Admission::Admitted);
            ASSERT_TRUE(chunk.result.ok());
            expectSameReads(
                chunk.result.reads,
                std::vector<Read>(entry.expected.begin() + 64,
                                  entry.expected.begin() + 128));

            const StatusOr<ArchiveMeta> described =
                service.describe(meta->id);
            ASSERT_TRUE(described.ok());
            EXPECT_EQ(described->readCount, meta->readCount);
        }

        const MultiArchiveStats stats = service.stats();
        EXPECT_EQ(stats.opens, corpus.size());
        EXPECT_EQ(stats.reopens, 0u);
        EXPECT_EQ(stats.knownArchives, corpus.size());
        EXPECT_GT(stats.readsServed, 0u);
        EXPECT_GT(stats.cacheBytesReserved, 0u);

        // Out-of-range spans and chunks are rejected up front.
        Status reject;
        EXPECT_EQ(service.readRangeSync(0, 0,
                                        corpus[0].expected.size() + 1)
                      .admission,
                  Admission::BadRange);
        EXPECT_EQ(service.readChunkSync(0, corpus[0].chunks).admission,
                  Admission::BadRange);
        EXPECT_EQ(service
                      .readRange(99, 0, 1, RequestOptions(),
                                 [](ReadResult) { FAIL(); }, &reject)
                      ,
                  Admission::UnknownArchive);
        EXPECT_FALSE(reject.ok());
    }
    removeCorpus(dir, corpus);
}

TEST(NetMultiArchive, HostileNamesAndMissingFilesAreRecoverable)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 1);
    {
        MultiArchiveOptions options;
        options.ownedPoolThreads = 1;
        MultiArchiveService service(dir, options);

        EXPECT_FALSE(service.open("").ok());
        EXPECT_FALSE(service.open("../etc/passwd").ok());
        EXPECT_FALSE(service.open("a/../../b.sage").ok());
        EXPECT_FALSE(service.open("/abs/path.sage").ok());
        EXPECT_FALSE(service.open(std::string("x", 1) + '\0').ok());
        EXPECT_FALSE(service.open("missing.sage").ok());
        EXPECT_FALSE(service.describe(12).ok());
        EXPECT_FALSE(service.closeArchive(12).ok());

        // Failed opens leave no registry residue (a hostile OPEN
        // flood cannot grow memory), and the service still works.
        EXPECT_EQ(service.stats().knownArchives, 0u);
        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok()) << meta.status().toString();
        EXPECT_EQ(service.stats().knownArchives, 1u);
        EXPECT_TRUE(
            service.readRangeSync(meta->id, 0, 1).result.ok());
    }
    removeCorpus(dir, corpus);
}

/** Satellite: eviction past the LRU cap releases the partition's
 *  cache bytes and a later read transparently reopens. */
TEST(NetMultiArchive, EvictionPastCapReopensTransparently)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 3);
    {
        MultiArchiveOptions options;
        options.globalCacheBudgetBytes = 8 << 20;
        options.maxOpenArchives = 2;
        options.ownedPoolThreads = 2;
        MultiArchiveService service(dir, options);
        EXPECT_EQ(service.partitionBytes(), (8ull << 20) / 2);

        const StatusOr<ArchiveMeta> a = service.open(corpus[0].name);
        const StatusOr<ArchiveMeta> b = service.open(corpus[1].name);
        ASSERT_TRUE(a.ok() && b.ok());
        ASSERT_TRUE(service.readRangeSync(a->id, 0, 64)
                        .result.ok());
        ASSERT_TRUE(service.readRangeSync(b->id, 0, 64)
                        .result.ok());
        // Touch b so a is the LRU victim, then open c past the cap.
        // (The touch may decode another chunk of b, so snapshot the
        // warm byte count after it — between here and the eviction no
        // new decode runs.)
        ASSERT_TRUE(service.readRangeSync(b->id, 64, 1)
                        .result.ok());
        const uint64_t warm = service.stats().cacheBytesReserved;
        EXPECT_GT(warm, 0u);
        const StatusOr<ArchiveMeta> c = service.open(corpus[2].name);
        ASSERT_TRUE(c.ok()) << c.status().toString();

        MultiArchiveStats stats = service.stats();
        EXPECT_EQ(stats.evictions, 1u);
        EXPECT_EQ(stats.openArchives, 2u);
        EXPECT_EQ(stats.knownArchives, 3u);
        EXPECT_EQ(stats.opens, 3u);
        EXPECT_EQ(stats.reopens, 0u);
        // a's partition released its decoded bytes; c is still cold.
        EXPECT_LT(stats.cacheBytesReserved, warm);

        // Reading the evicted archive reopens it under the same id,
        // byte-identical, and evicts the new victim (b).
        MultiArchiveService::SyncOutcome again =
            service.readRangeSync(a->id, 0,
                                  corpus[0].expected.size());
        ASSERT_EQ(again.admission, Admission::Admitted);
        ASSERT_TRUE(again.result.ok())
            << again.result.error.toString();
        expectSameReads(again.result.reads, corpus[0].expected);

        stats = service.stats();
        EXPECT_EQ(stats.reopens, 1u);
        EXPECT_EQ(stats.evictions, 2u);
        EXPECT_EQ(stats.openArchives, 2u);

        // Same name maps to the same stable id.
        const StatusOr<ArchiveMeta> a2 = service.open(corpus[0].name);
        ASSERT_TRUE(a2.ok());
        EXPECT_EQ(a2->id, a->id);
    }
    removeCorpus(dir, corpus);
}

/** Satellite: the admission probe is a relaxed atomic read and sheds
 *  deterministically at the high-water mark. */
TEST(NetMultiArchive, AdmissionControlShedsAtHighWater)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 1);
    {
        ThreadPool pool(1);
        MultiArchiveOptions options;
        options.pool = &pool;
        options.admissionHighWater = 1;
        MultiArchiveService service(dir, options);

        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok()) << meta.status().toString();

        // Block the only worker so admitted requests stay queued.
        std::promise<void> release;
        std::shared_future<void> released =
            release.get_future().share();
        pool.submit([released] { released.wait(); });

        std::promise<ReadResult> first_done;
        ASSERT_EQ(service.readRange(
                      meta->id, 0, 64, RequestOptions(),
                      [&](ReadResult result) {
                          first_done.set_value(std::move(result));
                      }),
                  Admission::Admitted);
        EXPECT_GE(service.queueDepth(), 1u);

        // Queue depth >= high water: the next request is shed before
        // enqueue, its callback never runs.
        Status reject;
        ASSERT_EQ(service.readRange(meta->id, 0, 64,
                                    RequestOptions(),
                                    [](ReadResult) { FAIL(); },
                                    &reject),
                  Admission::Overloaded);
        EXPECT_EQ(reject.code(), StatusCode::Exhausted);

        release.set_value();
        const ReadResult result = first_done.get_future().get();
        ASSERT_TRUE(result.ok()) << result.error.toString();
        expectSameReads(result.reads,
                        std::vector<Read>(corpus[0].expected.begin(),
                                          corpus[0].expected.begin() +
                                              64));

        const MultiArchiveStats stats = service.stats();
        EXPECT_EQ(stats.admitted, 1u);
        EXPECT_EQ(stats.overloaded, 1u);
        EXPECT_EQ(stats.queueDepth, 0u);
    }
    removeCorpus(dir, corpus);
}

/** Satellite: server-side fault injection (sage_cli serve
 *  --fault-rate) — opens survive (the container parse is disarmed),
 *  reads surface recoverable Error results, the file is undamaged. */
TEST(NetMultiArchive, FaultInjectionErrorsAreRecoverable)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 1);
    {
        MultiArchiveOptions options;
        options.ownedPoolThreads = 1;
        options.faultRate = 1.0;  // Every armed read faults.
        options.faultSeed = 7;
        options.decodeRetries = 1;
        MultiArchiveService service(dir, options);

        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok()) << meta.status().toString();

        MultiArchiveService::SyncOutcome outcome =
            service.readRangeSync(meta->id, 0, 64);
        ASSERT_EQ(outcome.admission, Admission::Admitted);
        EXPECT_EQ(outcome.result.status, RequestStatus::Error);
        EXPECT_FALSE(outcome.result.error.ok());
        EXPECT_TRUE(outcome.result.reads.empty());
        EXPECT_GE(service.stats().errored, 1u);
    }
    {
        // The same files read back clean without injection.
        MultiArchiveOptions options;
        options.ownedPoolThreads = 1;
        MultiArchiveService service(dir, options);
        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok());
        MultiArchiveService::SyncOutcome outcome =
            service.readRangeSync(meta->id, 0,
                                  corpus[0].expected.size());
        ASSERT_TRUE(outcome.result.ok());
        expectSameReads(outcome.result.reads, corpus[0].expected);
    }
    removeCorpus(dir, corpus);
}

// ---------------------------------------------------------------------
// Server over loopback sockets
// ---------------------------------------------------------------------

class NetServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = perTestScratchPath("corpus");
        corpus_ = makeCorpus(dir_, 3);
    }

    void
    TearDown() override
    {
        removeCorpus(dir_, corpus_);
    }

    std::string dir_;
    std::vector<CorpusArchive> corpus_;
};

TEST_F(NetServerTest, MultiConnectionByteIdentity)
{
    MultiArchiveOptions options;
    options.globalCacheBudgetBytes = 8 << 20;
    options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());
    ASSERT_NE(server.port(), 0);

    // One connection per archive, all walking concurrently in small
    // batches; every byte must match the sequential reader's truth.
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (size_t i = 0; i < corpus_.size(); i++) {
        threads.emplace_back([&, i] {
            StatusOr<std::unique_ptr<Client>> client =
                Client::connect("127.0.0.1", server.port());
            if (!client.ok()) {
                failures++;
                return;
            }
            const StatusOr<OpenReply> open =
                (*client)->open(corpus_[i].name);
            if (!open.ok() ||
                open->readCount != corpus_[i].expected.size()) {
                failures++;
                return;
            }
            std::vector<Read> got;
            for (uint64_t first = 0; first < open->readCount;) {
                const uint64_t batch =
                    std::min<uint64_t>(100, open->readCount - first);
                const StatusOr<net::ReadReply> reply =
                    (*client)->readRange(open->archive, first, batch);
                if (!reply.ok() || !reply->ok()) {
                    failures++;
                    return;
                }
                got.insert(got.end(), reply->reads.begin(),
                           reply->reads.end());
                first += batch;
            }
            expectSameReads(got, corpus_[i].expected);

            // Chunk-addressed read of chunk 1.
            const StatusOr<net::ReadReply> chunk =
                (*client)->readChunk(open->archive, 1);
            if (!chunk.ok() || !chunk->ok()) {
                failures++;
                return;
            }
            expectSameReads(
                chunk->reads,
                std::vector<Read>(corpus_[i].expected.begin() + 64,
                                  corpus_[i].expected.begin() + 128));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);

    // Server-wide STAT reflects the work.
    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    const StatusOr<WireServerStats> stats = (*client)->statServer();
    ASSERT_TRUE(stats.ok()) << stats.status().toString();
    EXPECT_EQ(stats->knownArchives, corpus_.size());
    EXPECT_GT(stats->readsServed, 0u);
    EXPECT_EQ(stats->overloaded, 0u);

    const net::ServerNetStats net_stats = server.netStats();
    EXPECT_EQ(net_stats.accepted, corpus_.size() + 1);
    EXPECT_EQ(net_stats.protocolErrors, 0u);
    EXPECT_GT(net_stats.repliesOut, 0u);

    server.stop();
    server.stop();  // Idempotent.
    EXPECT_FALSE(server.running());
}

TEST_F(NetServerTest, ErrorRepliesLeaveConnectionUsable)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, service_options);
    ServerOptions server_options;
    server_options.maxReadsPerRequest = 100;
    Server server(service, server_options);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();

    // Unknown archive name: error reply, connection stays up.
    EXPECT_FALSE((*client)->open("missing.sage").ok());

    const StatusOr<OpenReply> open = (*client)->open(corpus_[0].name);
    ASSERT_TRUE(open.ok()) << open.status().toString();

    // Count above the server's per-request ceiling: BadRequest.
    StatusOr<net::ReadReply> reply =
        (*client)->readRange(open->archive, 0, 101);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, WireStatus::BadRequest);

    // Span past the end: OutOfRange, in-band.
    reply = (*client)->readRange(open->archive,
                                 corpus_[0].expected.size(), 1);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, WireStatus::OutOfRange);

    // Unknown archive id.
    reply = (*client)->readRange(42, 0, 1);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, WireStatus::UnknownArchive);

    // The connection survived every error and still serves data.
    reply = (*client)->readRange(open->archive, 0, 100);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok()) << reply->message;
    expectSameReads(reply->reads,
                    std::vector<Read>(corpus_[0].expected.begin(),
                                      corpus_[0].expected.begin() +
                                          100));

    // Explicit CLOSE drops the server's open; a later read reopens.
    EXPECT_TRUE((*client)->closeArchive(open->archive).ok());
    reply = (*client)->readRange(open->archive, 0, 1);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply->ok());
    const StatusOr<WireServerStats> stats = (*client)->statServer();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->reopens, 1u);
}

TEST_F(NetServerTest, OverloadProducesOverloadedRepliesNotDrops)
{
    ThreadPool pool(1);
    MultiArchiveOptions service_options;
    service_options.pool = &pool;
    service_options.admissionHighWater = 1;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> stuck =
        Client::connect("127.0.0.1", server.port());
    StatusOr<std::unique_ptr<Client>> shed =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(stuck.ok() && shed.ok());
    const StatusOr<OpenReply> open = (*stuck)->open(corpus_[0].name);
    ASSERT_TRUE(open.ok()) << open.status().toString();

    // Block the only worker, then park one admitted request in the
    // queue from a second thread (the blocking client waits for it).
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    pool.submit([released] { released.wait(); });

    std::thread waiter([&] {
        const StatusOr<net::ReadReply> reply =
            (*stuck)->readRange(open->archive, 0, 64);
        EXPECT_TRUE(reply.ok() && reply->ok());
    });
    const auto give_up = std::chrono::steady_clock::now() +
        std::chrono::seconds(10);
    while (service.queueDepth() < 1 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GE(service.queueDepth(), 1u);

    // The second connection's read is shed with an explicit
    // Overloaded reply — not a dropped connection, not a stall.
    const StatusOr<net::ReadReply> reply =
        (*shed)->readRange(open->archive, 0, 64);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, WireStatus::Overloaded);

    release.set_value();
    waiter.join();

    // Both connections remain usable after the shed.
    const StatusOr<WireServerStats> stats = (*shed)->statServer();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->overloaded, 1u);
    EXPECT_EQ(stats->admitted, 1u);
}

TEST_F(NetServerTest, DeadlineExpiresInQueue)
{
    ThreadPool pool(1);
    MultiArchiveOptions service_options;
    service_options.pool = &pool;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    const StatusOr<OpenReply> open = (*client)->open(corpus_[0].name);
    ASSERT_TRUE(open.ok());

    // Hold the worker past the request's 1 ms deadline; the dequeue
    // check abandons it with an Expired reply.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    pool.submit([released] { released.wait(); });
    std::thread unblock([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        release.set_value();
    });
    const StatusOr<net::ReadReply> reply =
        (*client)->readRange(open->archive, 0, 64,
                             RequestPriority::Normal,
                             /*deadline_ms=*/1);
    unblock.join();
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, WireStatus::Expired);

    // The expired request cost nothing and the connection still works.
    const StatusOr<net::ReadReply> again =
        (*client)->readRange(open->archive, 0, 64);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->ok());
}

/** Satellite: a corrupt archive errors its own connection's replies
 *  and leaves every other connection's data path untouched. */
TEST_F(NetServerTest, CorruptArchiveIsolatedToItsConnection)
{
    // Truncate archive 1's file mid-container before any open.
    const std::string victim = dir_ + "/" + corpus_[1].name;
    struct stat st;
    ASSERT_EQ(::stat(victim.c_str(), &st), 0);
    ASSERT_EQ(::truncate(victim.c_str(), st.st_size / 2), 0);

    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> healthy =
        Client::connect("127.0.0.1", server.port());
    StatusOr<std::unique_ptr<Client>> broken =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(healthy.ok() && broken.ok());

    // The corrupt archive fails its OPEN with a decode-side status;
    // the connection that asked survives.
    const StatusOr<OpenReply> bad = (*broken)->open(corpus_[1].name);
    ASSERT_FALSE(bad.ok());
    EXPECT_TRUE((*broken)->statServer().ok());

    // The other connection reads its archive byte-identically.
    const StatusOr<OpenReply> good = (*healthy)->open(corpus_[0].name);
    ASSERT_TRUE(good.ok()) << good.status().toString();
    const StatusOr<net::ReadReply> reply =
        (*healthy)->readRange(good->archive, 0, good->readCount);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok()) << reply->message;
    expectSameReads(reply->reads, corpus_[0].expected);
}

TEST_F(NetServerTest, HostileLengthPrefixGetsProtocolErrorThenClose)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 1;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    // Raw socket: claim a 4 GiB frame. The server must answer with a
    // ProtocolError reply and close — never allocate the claim.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const uint8_t hostile[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(fd, hostile, sizeof hostile, 0),
              static_cast<ssize_t>(sizeof hostile));

    // Read until EOF; the bytes before it must parse as a
    // ProtocolError reply.
    std::vector<uint8_t> got;
    uint8_t buf[512];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        got.insert(got.end(), buf, buf + n);
    }
    ::close(fd);
    ASSERT_GT(got.size(), net::kLenBytes + net::kReplyHeaderBytes);
    const StatusOr<ReplyHeader> header = net::parseReplyHeader(
        got.data() + net::kLenBytes, got.size() - net::kLenBytes);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->status, WireStatus::ProtocolError);
    EXPECT_GE(server.netStats().protocolErrors, 1u);

    // The server shrugged it off: a well-formed client still works.
    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE((*client)->statServer().ok());
}

// ---------------------------------------------------------------------
// Resilience: wire integrity, hygiene, drain, retrying client, chaos
// ---------------------------------------------------------------------

/** Raw blocking TCP connect to 127.0.0.1:@p port (-1 on failure),
 *  with a 10 s receive timeout so a buggy server cannot hang tests. */
int
rawConnect(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    timeval patience = {};
    patience.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &patience,
                 sizeof(patience));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** recv() until EOF/error, returning everything received. */
std::vector<uint8_t>
recvAll(int fd)
{
    std::vector<uint8_t> got;
    uint8_t buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        got.insert(got.end(), buf, buf + n);
    }
    return got;
}

TEST_F(NetServerTest, OldProtocolClientGetsCleanVersionMismatch)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 1;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    // Shape the OPEN exactly as a v1 client would have sent it:
    // version byte 0, no trailing CRC, length prefix shortened to
    // match.
    std::vector<uint8_t> frame;
    net::appendOpenRequest(frame, 99, corpus_[0].name,
                           RequestPriority::Normal, 0);
    frame.resize(frame.size() - net::kFrameCrcBytes);
    frame[net::kLenBytes + 2] = 0;  // Version byte.
    const uint32_t len =
        static_cast<uint32_t>(frame.size() - net::kLenBytes);
    std::memcpy(frame.data(), &len, sizeof len);

    const int fd = rawConnect(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), 0),
              static_cast<ssize_t>(frame.size()));

    // The reply must be v1-shaped (version 0, no CRC) so this old
    // client's parser reads a clean VersionMismatch — not garbage,
    // not a silent close.
    const std::vector<uint8_t> got = recvAll(fd);
    ::close(fd);
    ASSERT_GT(got.size(), net::kLenBytes + net::kReplyHeaderBytes);
    const uint8_t *reply = got.data() + net::kLenBytes;
    const size_t reply_size = got.size() - net::kLenBytes;
    EXPECT_EQ(reply[2], 0);
    const StatusOr<ReplyHeader> header =
        net::parseReplyHeader(reply, reply_size);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->status, WireStatus::VersionMismatch);
    EXPECT_EQ(header->requestId, 99u);
    const StatusOr<std::string> message = net::parseErrorMessage(
        reply + net::kReplyHeaderBytes,
        reply_size - net::kReplyHeaderBytes);
    ASSERT_TRUE(message.ok());
    EXPECT_NE(message->find("version"), std::string::npos);

    const net::ServerNetStats stats = server.netStats();
    EXPECT_EQ(stats.versionMismatches, 1u);
    EXPECT_GE(stats.protocolErrors, 1u);

    // A v2 client on the same server is untouched.
    StatusOr<std::unique_ptr<Client>> v2 =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(v2.ok());
    EXPECT_TRUE((*v2)->open(corpus_[0].name).ok());
}

TEST_F(NetServerTest, IdleAndSlowLorisConnectionsAreClosed)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 1;
    MultiArchiveService service(dir_, service_options);
    ServerOptions server_options;
    server_options.idleTimeoutSeconds = 0.2;
    server_options.headerReadTimeoutSeconds = 0.2;
    Server server(service, server_options);
    ASSERT_TRUE(server.start().ok());

    // One connection that never says anything, one that drips two
    // bytes of a length prefix and stalls (slow loris).
    const int idle = rawConnect(server.port());
    const int loris = rawConnect(server.port());
    ASSERT_GE(idle, 0);
    ASSERT_GE(loris, 0);
    const uint8_t drip[2] = {0x10, 0x00};
    ASSERT_EQ(::send(loris, drip, sizeof drip, 0), 2);

    // Both must be closed by the server (EOF, not a test timeout;
    // rawConnect arms a 10 s SO_RCVTIMEO backstop).
    EXPECT_TRUE(recvAll(idle).empty());
    EXPECT_TRUE(recvAll(loris).empty());
    ::close(idle);
    ::close(loris);
    EXPECT_EQ(server.netStats().timedOutConnections, 2u);

    // A working client with live traffic is not idle-closed.
    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE((*client)->statServer().ok());
}

TEST_F(NetServerTest, ConnectionCapShedsWithOverloadedReply)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 1;
    MultiArchiveService service(dir_, service_options);
    ServerOptions server_options;
    server_options.maxConnections = 1;
    Server server(service, server_options);
    ASSERT_TRUE(server.start().ok());

    // Occupy the single slot (the STAT round trip guarantees the
    // server registered the connection before we try the second).
    StatusOr<std::unique_ptr<Client>> occupant =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(occupant.ok());
    ASSERT_TRUE((*occupant)->statServer().ok());

    // The connection past the cap is told why, then closed — never
    // left to stall in the accept queue.
    const int shed = rawConnect(server.port());
    ASSERT_GE(shed, 0);
    const std::vector<uint8_t> got = recvAll(shed);
    ::close(shed);
    ASSERT_GT(got.size(), net::kLenBytes);
    size_t body = 0;
    ASSERT_EQ(net::verifyFrame(got.data() + net::kLenBytes,
                               got.size() - net::kLenBytes, &body),
              net::FrameVerdict::Ok);
    const StatusOr<ReplyHeader> header =
        net::parseReplyHeader(got.data() + net::kLenBytes, body);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->status, WireStatus::Overloaded);
    EXPECT_EQ(server.netStats().shedConnections, 1u);

    // The occupant is unaffected.
    EXPECT_TRUE((*occupant)->statServer().ok());
}

/** recv exactly one length-prefixed frame from @p fd (the prefix is
 *  stripped); empty on EOF/error. */
std::vector<uint8_t>
recvFrame(int fd)
{
    uint8_t prefix[net::kLenBytes];
    size_t have = 0;
    while (have < sizeof prefix) {
        const ssize_t n =
            ::recv(fd, prefix + have, sizeof prefix - have, 0);
        if (n <= 0)
            return {};
        have += static_cast<size_t>(n);
    }
    uint32_t len = 0;
    std::memcpy(&len, prefix, sizeof len);
    std::vector<uint8_t> frame(len);
    have = 0;
    while (have < frame.size()) {
        const ssize_t n =
            ::recv(fd, frame.data() + have, frame.size() - have, 0);
        if (n <= 0)
            return {};
        have += static_cast<size_t>(n);
    }
    return frame;
}

TEST_F(NetServerTest, GracefulDrainFlushesInFlightAndRejectsNew)
{
    ThreadPool pool(1);
    MultiArchiveOptions service_options;
    service_options.pool = &pool;
    MultiArchiveService service(dir_, service_options);
    ServerOptions server_options;
    server_options.drainDeadlineSeconds = 30.0;  // Never forced here.
    Server server(service, server_options);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> inflight =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(inflight.ok());
    const StatusOr<OpenReply> open =
        (*inflight)->open(corpus_[0].name);
    ASSERT_TRUE(open.ok()) << open.status().toString();

    // Park two admitted requests: the only worker is blocked, so
    // both reads sit in the service queue when the drain begins.
    // The second rides a raw socket so the same connection can
    // pipeline another request mid-drain (a drain retires idle
    // connections immediately — only one owed a reply stays up to
    // receive the in-band rejection).
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    pool.submit([released] { released.wait(); });
    std::thread reader([&] {
        const StatusOr<net::ReadReply> reply =
            (*inflight)->readRange(open->archive, 0, 64);
        ASSERT_TRUE(reply.ok()) << reply.status().toString();
        ASSERT_TRUE(reply->ok()) << reply->message;
        expectSameReads(
            reply->reads,
            std::vector<Read>(corpus_[0].expected.begin(),
                              corpus_[0].expected.begin() + 64));
    });
    const int pipelined = rawConnect(server.port());
    ASSERT_GE(pipelined, 0);
    {
        std::vector<uint8_t> request;
        net::appendReadRangeRequest(request, 1, open->archive, 0, 1,
                                    RequestPriority::Normal, 0);
        ASSERT_EQ(::send(pipelined, request.data(), request.size(), 0),
                  static_cast<ssize_t>(request.size()));
    }
    const auto give_up = std::chrono::steady_clock::now() +
        std::chrono::seconds(10);
    while (service.queueDepth() < 2 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GE(service.queueDepth(), 2u);

    server.beginDrain();
    EXPECT_TRUE(server.draining());

    // The listener closes: new connections are refused (poll until
    // the event loop has acted on the flag).
    bool refused = false;
    while (!refused &&
           std::chrono::steady_clock::now() < give_up) {
        const int probe = rawConnect(server.port());
        if (probe < 0) {
            refused = true;
        } else {
            ::close(probe);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    }
    EXPECT_TRUE(refused);

    // New work on a connection that is still owed a reply is told the
    // server is going away — in-band, retry-elsewhere semantics.
    {
        std::vector<uint8_t> request;
        net::appendReadRangeRequest(request, 2, open->archive, 0, 1,
                                    RequestPriority::Normal, 0);
        ASSERT_EQ(::send(pipelined, request.data(), request.size(), 0),
                  static_cast<ssize_t>(request.size()));
    }
    {
        const std::vector<uint8_t> frame = recvFrame(pipelined);
        ASSERT_FALSE(frame.empty());
        size_t body = 0;
        ASSERT_EQ(net::verifyFrame(frame.data(), frame.size(), &body),
                  net::FrameVerdict::Ok);
        const StatusOr<ReplyHeader> header =
            net::parseReplyHeader(frame.data(), body);
        ASSERT_TRUE(header.ok()) << header.status().toString();
        EXPECT_EQ(header->status, WireStatus::ShuttingDown);
        EXPECT_EQ(header->requestId, 2u);
    }

    // Unblock the worker: both parked replies must still be
    // delivered — byte-identical — before the server exits.
    release.set_value();
    reader.join();
    {
        const std::vector<uint8_t> frame = recvFrame(pipelined);
        ASSERT_FALSE(frame.empty());
        size_t body = 0;
        ASSERT_EQ(net::verifyFrame(frame.data(), frame.size(), &body),
                  net::FrameVerdict::Ok);
        const StatusOr<ReplyHeader> header =
            net::parseReplyHeader(frame.data(), body);
        ASSERT_TRUE(header.ok()) << header.status().toString();
        EXPECT_EQ(header->status, WireStatus::Ok);
        EXPECT_EQ(header->requestId, 1u);
    }
    // ... and once nothing more is owed, the connection retires.
    EXPECT_TRUE(recvFrame(pipelined).empty());
    ::close(pipelined);
    EXPECT_TRUE(server.drainWait());
    EXPECT_FALSE(server.running());
    EXPECT_GE(server.netStats().drainRejects, 1u);
}

TEST(NetClient, IoTimeoutSurfacesAsRetryableIoError)
{
    // A listener whose backlog completes TCP handshakes but never
    // accepts or replies: the client's blocking recv must time out.
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 4), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(
                  lfd, reinterpret_cast<sockaddr *>(&addr), &len),
              0);
    const uint16_t port = ntohs(addr.sin_port);

    ClientOptions options;
    options.ioTimeoutSeconds = 0.5;
    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", port, options);
    ASSERT_TRUE(client.ok()) << client.status().toString();

    const auto start = std::chrono::steady_clock::now();
    const StatusOr<WireServerStats> reply = (*client)->statServer();
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::IoError);
    EXPECT_NE(reply.status().message().find("timed out"),
              std::string::npos)
        << reply.status().toString();
    EXPECT_GE(elapsed, 0.3);
    EXPECT_LT(elapsed, 5.0);

    // The timeout desynced the stream: the connection is marked
    // broken and later calls fail fast instead of blocking again.
    EXPECT_TRUE((*client)->broken());
    const auto again = std::chrono::steady_clock::now();
    EXPECT_FALSE((*client)->statServer().ok());
    EXPECT_LT(std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - again)
                  .count(),
              0.3);
    ::close(lfd);
}

TEST(NetResilientClient, RetryBudgetBoundedByRequestDeadline)
{
    // Reserve an ephemeral port, then close it: connects to it are
    // refused fast, so the retry loop is pure backoff.
    const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(probe, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(
                  probe, reinterpret_cast<sockaddr *>(&addr), &len),
              0);
    const uint16_t dead_port = ntohs(addr.sin_port);
    ::close(probe);

    ResilientClientOptions options;
    options.retry.maxAttempts = 1u << 20;  // Only the deadline stops it.
    options.retry.baseBackoffSeconds = 0.005;
    options.retry.maxBackoffSeconds = 0.05;
    options.retry.seed = 5;
    ResilientClient client("127.0.0.1", dead_port, options);

    const auto start = std::chrono::steady_clock::now();
    const StatusOr<net::ReadReply> reply = client.readRange(
        1, 0, 1, RequestPriority::Normal, /*deadline_ms=*/400);
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_FALSE(reply.ok());
    // The loop used its budget (it did not give up after one try)
    // and stopped once the deadline was spent, sleeps included.
    EXPECT_GE(elapsed, 0.3);
    EXPECT_LT(elapsed, 5.0);
    EXPECT_GT(client.stats().retries, 0u);
    EXPECT_GT(client.stats().backoffSeconds, 0.0);
    EXPECT_LE(client.stats().backoffSeconds, 0.45);
    EXPECT_FALSE(client.connected());
}

/** Walk the whole archive through @p client in small batches,
 *  asserting byte identity against @p expected. */
void
walkArchive(ResilientClient &client, uint32_t archive,
            const std::vector<Read> &expected)
{
    std::vector<Read> got;
    for (uint64_t first = 0; first < expected.size();) {
        const uint64_t batch =
            std::min<uint64_t>(64, expected.size() - first);
        const StatusOr<net::ReadReply> reply =
            client.readRange(archive, first, batch);
        ASSERT_TRUE(reply.ok()) << reply.status().toString();
        ASSERT_TRUE(reply->ok()) << reply->message;
        got.insert(got.end(), reply->reads.begin(),
                   reply->reads.end());
        first += batch;
    }
    expectSameReads(got, expected);
}

TEST_F(NetServerTest, ResilientClientSurvivesResetsByteIdentical)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    ChaosConfig chaos;
    chaos.seed = 11;
    chaos.resetRate = 0.03;
    ChaosProxy proxy("127.0.0.1", server.port(), chaos);
    ASSERT_TRUE(proxy.start().ok());

    ResilientClientOptions options;
    options.retry.maxAttempts = 64;
    options.retry.seed = 3;
    options.client.ioTimeoutSeconds = 5.0;
    ResilientClient client("127.0.0.1", proxy.port(), options);
    const StatusOr<OpenReply> open = client.open(corpus_[0].name);
    ASSERT_TRUE(open.ok()) << open.status().toString();

    // Walk until the proxy has actually fired at least one reset
    // (decisions are per forwarded buffer, so a couple of passes is
    // plenty at 3%), every pass byte-identical.
    for (int pass = 0; pass < 10; pass++) {
        walkArchive(client, open->archive, corpus_[0].expected);
        if (proxy.stats().resets > 0 &&
            client.stats().reconnects > 0)
            break;
    }
    EXPECT_GT(proxy.stats().resets, 0u);
    EXPECT_GT(client.stats().reconnects, 0u);
    EXPECT_GT(client.stats().transportRetries, 0u);

    proxy.stop();
    server.stop();
}

TEST_F(NetServerTest, CorruptedFramesNeverYieldWrongBytes)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    // Aggressive bit-flipping plus splits (so flips land mid-frame
    // on re-assembled boundaries too). Every read either arrives
    // byte-identical or is retried — wrong bytes are the one
    // forbidden outcome.
    ChaosConfig chaos;
    chaos.seed = 13;
    chaos.corruptRate = 0.08;
    chaos.splitRate = 0.25;
    ChaosProxy proxy("127.0.0.1", server.port(), chaos);
    ASSERT_TRUE(proxy.start().ok());

    ResilientClientOptions options;
    options.retry.maxAttempts = 64;
    options.retry.seed = 9;
    options.client.ioTimeoutSeconds = 5.0;
    ResilientClient client("127.0.0.1", proxy.port(), options);
    const StatusOr<OpenReply> open = client.open(corpus_[0].name);
    ASSERT_TRUE(open.ok()) << open.status().toString();

    for (int pass = 0; pass < 10; pass++) {
        walkArchive(client, open->archive, corpus_[0].expected);
        if (proxy.stats().corrupted > 0)
            break;
    }
    EXPECT_GT(proxy.stats().corrupted, 0u);
    // Every flip was caught by a CRC somewhere: client-side retries
    // and/or server-side rejects, but never silent damage.
    EXPECT_GT(client.stats().retries +
                  server.netStats().crcMismatches,
              0u);

    proxy.stop();
    server.stop();
}

} // namespace
} // namespace sage
