/**
 * @file
 * Tests for the network front end (src/net/): wire-protocol encode /
 * decode round trips and malformed-frame rejection, the
 * MultiArchiveService registry (byte identity across archives, LRU
 * eviction past the open cap with transparent reopen, admission
 * control shed, server-side fault injection), and the epoll server
 * over real loopback sockets — multi-connection byte identity vs a
 * sequential SageReader, Overloaded / Expired / error replies that
 * leave the connection usable, corrupt-archive isolation between
 * connections, and hostile-bytes handling. Runs under the ASan/UBSan
 * and TSan presets in CI.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>

#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/thread_pool.hh"

namespace sage {
namespace {

using net::Client;
using net::MsgType;
using net::OpenReply;
using net::ReplyHeader;
using net::RequestFrame;
using net::Server;
using net::ServerOptions;
using net::WireServerStats;
using net::WireStatus;

/** Scratch path unique to the running test: ctest runs every test as
 *  its own parallel process, so fixture files must not collide. */
std::string
perTestScratchPath(const std::string &suffix)
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + "sage_net_" +
        std::string(info->test_suite_name()) + "_" + info->name() +
        "_" + suffix;
}

/** Element-wise equality including headers. */
void
expectSameReads(const std::vector<Read> &a, const std::vector<Read> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        ASSERT_EQ(a[i].bases, b[i].bases) << "read " << i;
        ASSERT_EQ(a[i].quals, b[i].quals) << "read " << i;
        ASSERT_EQ(a[i].header, b[i].header) << "read " << i;
    }
}

/** One archive of a synthetic corpus plus its stored-order truth. */
struct CorpusArchive
{
    std::string name;
    std::vector<Read> expected;
    size_t chunks = 0;
};

/** Synthesize @p count distinct archives under @p dir (created here)
 *  with many small chunks each, returning per-archive ground truth
 *  from a plain sequential reader. */
std::vector<CorpusArchive>
makeCorpus(const std::string &dir, size_t count)
{
    ::mkdir(dir.c_str(), 0755);
    std::vector<CorpusArchive> corpus;
    for (size_t i = 0; i < count; i++) {
        DatasetSpec spec = makeTinySpec(false);
        spec.seed += 17 * (i + 1);  // Distinct reads per archive.
        const SimulatedDataset ds = synthesizeDataset(spec);
        SageConfig config;
        config.chunkReads = 64;  // Many small chunks.
        config.preserveOrder = false;
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config);

        CorpusArchive entry;
        entry.name = "rs" + std::to_string(i) + ".sage";
        const std::string path = dir + "/" + entry.name;
        {
            FileSink sink(path);
            sink.writeBytes(archive.bytes);
        }
        SageReader reader(path);
        entry.chunks = reader.chunkCount();
        for (size_t c = 0; c < entry.chunks; c++) {
            const std::vector<Read> reads = reader.readChunk(c);
            entry.expected.insert(entry.expected.end(), reads.begin(),
                                  reads.end());
        }
        corpus.push_back(std::move(entry));
    }
    return corpus;
}

void
removeCorpus(const std::string &dir,
             const std::vector<CorpusArchive> &corpus)
{
    for (const CorpusArchive &entry : corpus)
        std::remove((dir + "/" + entry.name).c_str());
    ::rmdir(dir.c_str());
}

// ---------------------------------------------------------------------
// Protocol round trips
// ---------------------------------------------------------------------

/** Parse @p frame skipping its length prefix, asserting the prefix
 *  matches the body size. */
StatusOr<RequestFrame>
parseRequest(const std::vector<uint8_t> &frame)
{
    EXPECT_GE(frame.size(), net::kLenBytes);
    uint32_t len = 0;
    std::memcpy(&len, frame.data(), sizeof len);
    EXPECT_EQ(static_cast<size_t>(len) + net::kLenBytes, frame.size());
    return net::parseRequestFrame(frame.data() + net::kLenBytes,
                                  frame.size() - net::kLenBytes);
}

TEST(NetProtocol, OpenRequestRoundTrip)
{
    std::vector<uint8_t> frame;
    net::appendOpenRequest(frame, 42, "dir/reads.sage",
                           RequestPriority::Interactive, 250);
    const StatusOr<RequestFrame> parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::Open);
    EXPECT_EQ(parsed->priority, RequestPriority::Interactive);
    EXPECT_EQ(parsed->requestId, 42u);
    EXPECT_EQ(parsed->deadlineMs, 250u);
    EXPECT_EQ(parsed->name, "dir/reads.sage");
}

TEST(NetProtocol, ReadRequestsRoundTrip)
{
    std::vector<uint8_t> frame;
    net::appendReadRangeRequest(frame, 7, 3, 1000, 64,
                                RequestPriority::Background, 0);
    StatusOr<RequestFrame> parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::ReadRange);
    EXPECT_EQ(parsed->priority, RequestPriority::Background);
    EXPECT_EQ(parsed->requestId, 7u);
    EXPECT_EQ(parsed->archive, 3u);
    EXPECT_EQ(parsed->first, 1000u);
    EXPECT_EQ(parsed->count, 64u);

    frame.clear();
    net::appendReadChunkRequest(frame, 8, 2, 5,
                                RequestPriority::Normal, 10);
    parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::ReadChunk);
    EXPECT_EQ(parsed->archive, 2u);
    EXPECT_EQ(parsed->chunk, 5u);
    EXPECT_EQ(parsed->deadlineMs, 10u);

    frame.clear();
    net::appendStatRequest(frame, 9, net::kStatServer);
    parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::Stat);
    EXPECT_EQ(parsed->archive, net::kStatServer);

    frame.clear();
    net::appendCloseRequest(frame, 10, 1);
    parsed = parseRequest(frame);
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    EXPECT_EQ(parsed->type, MsgType::Close);
    EXPECT_EQ(parsed->archive, 1u);
}

TEST(NetProtocol, ReadReplyRoundTrip)
{
    std::vector<Read> reads(3);
    reads[0].header = "@r0";
    reads[0].bases = "ACGTACGT";
    reads[0].quals = "IIIIIIII";
    reads[1].bases = "GGGG";  // No header, no quality.
    reads[2].header = "@r2 with spaces";
    reads[2].bases = std::string(1000, 'A');
    reads[2].quals = std::string(1000, '#');

    std::vector<uint8_t> frame;
    net::appendReadReply(frame, MsgType::ReadRange, 77, reads);

    const StatusOr<ReplyHeader> header = net::parseReplyHeader(
        frame.data() + net::kLenBytes, frame.size() - net::kLenBytes);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->type, MsgType::ReadRange);
    EXPECT_EQ(header->status, WireStatus::Ok);
    EXPECT_EQ(header->requestId, 77u);

    const size_t skip = net::kLenBytes + net::kReplyHeaderBytes;
    const StatusOr<std::vector<Read>> back =
        net::parseReadReplyPayload(frame.data() + skip,
                                   frame.size() - skip);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    expectSameReads(*back, reads);
}

TEST(NetProtocol, OpenStatErrorRepliesRoundTrip)
{
    OpenReply meta;
    meta.archive = 5;
    meta.readCount = 12345;
    meta.chunkCount = 77;
    std::vector<uint8_t> frame;
    net::appendOpenReply(frame, 11, MsgType::Open, meta);
    const size_t skip = net::kLenBytes + net::kReplyHeaderBytes;
    StatusOr<OpenReply> open = net::parseOpenReplyPayload(
        frame.data() + skip, frame.size() - skip);
    ASSERT_TRUE(open.ok()) << open.status().toString();
    EXPECT_EQ(open->archive, 5u);
    EXPECT_EQ(open->readCount, 12345u);
    EXPECT_EQ(open->chunkCount, 77u);

    WireServerStats stats;
    stats.openArchives = 2;
    stats.knownArchives = 9;
    stats.opens = 10;
    stats.reopens = 3;
    stats.evictions = 4;
    stats.admitted = 1000;
    stats.overloaded = 17;
    stats.readsServed = 123456;
    stats.bytesServed = 1ull << 33;
    stats.cacheBytesReserved = 1 << 20;
    stats.cacheBudgetBytes = 1 << 24;
    stats.queueDepth = 6;
    frame.clear();
    net::appendStatReply(frame, 12, stats);
    const StatusOr<WireServerStats> back = net::parseStatReplyPayload(
        frame.data() + skip, frame.size() - skip);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back->knownArchives, 9u);
    EXPECT_EQ(back->reopens, 3u);
    EXPECT_EQ(back->overloaded, 17u);
    EXPECT_EQ(back->bytesServed, 1ull << 33);
    EXPECT_EQ(back->queueDepth, 6u);

    frame.clear();
    net::appendErrorReply(frame, MsgType::ReadRange, 13,
                          WireStatus::Overloaded, "queue full");
    const StatusOr<ReplyHeader> header = net::parseReplyHeader(
        frame.data() + net::kLenBytes, frame.size() - net::kLenBytes);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->status, WireStatus::Overloaded);
    const StatusOr<std::string> message = net::parseErrorMessage(
        frame.data() + skip, frame.size() - skip);
    ASSERT_TRUE(message.ok()) << message.status().toString();
    EXPECT_EQ(*message, "queue full");
}

TEST(NetProtocol, MalformedRequestsRejected)
{
    // Every strict prefix of a valid frame must fail cleanly.
    std::vector<uint8_t> frame;
    net::appendReadRangeRequest(frame, 1, 0, 0, 4,
                                RequestPriority::Normal, 0);
    const uint8_t *body = frame.data() + net::kLenBytes;
    const size_t size = frame.size() - net::kLenBytes;
    for (size_t cut = 0; cut < size; cut++)
        EXPECT_FALSE(net::parseRequestFrame(body, cut).ok())
            << "prefix of " << cut << " bytes parsed";

    // Trailing garbage is rejected, not ignored.
    std::vector<uint8_t> padded(body, body + size);
    padded.push_back(0);
    EXPECT_FALSE(
        net::parseRequestFrame(padded.data(), padded.size()).ok());

    // Unknown message type.
    std::vector<uint8_t> bad(body, body + size);
    bad[0] = 0;
    EXPECT_FALSE(net::parseRequestFrame(bad.data(), bad.size()).ok());
    bad[0] = 99;
    EXPECT_FALSE(net::parseRequestFrame(bad.data(), bad.size()).ok());

    // Out-of-range priority class.
    bad = std::vector<uint8_t>(body, body + size);
    bad[1] = static_cast<uint8_t>(kRequestPriorityCount);
    EXPECT_FALSE(net::parseRequestFrame(bad.data(), bad.size()).ok());

    // OPEN whose name length field exceeds the actual bytes.
    frame.clear();
    net::appendOpenRequest(frame, 2, "abc", RequestPriority::Normal, 0);
    std::vector<uint8_t> lying(frame.begin() + net::kLenBytes,
                               frame.end());
    lying[net::kRequestHeaderBytes] = 200;  // nameLen u16 low byte.
    EXPECT_FALSE(
        net::parseRequestFrame(lying.data(), lying.size()).ok());
}

TEST(NetProtocol, HostileReadReplyCountRejected)
{
    // A reply claiming 2^32-1 reads in a 12-byte payload must fail
    // before any allocation, not OOM.
    std::vector<uint8_t> payload(12, 0xFF);
    EXPECT_FALSE(
        net::parseReadReplyPayload(payload.data(), payload.size())
            .ok());
}

TEST(NetProtocol, WireStatusMapsLosslessly)
{
    EXPECT_EQ(net::wireStatusFromStatus(Status()), WireStatus::Ok);
    EXPECT_EQ(net::wireStatusFromStatus(Status::corrupt("x")),
              WireStatus::Corrupt);
    EXPECT_EQ(net::wireStatusFromStatus(Status::truncated("x")),
              WireStatus::Truncated);
    EXPECT_EQ(net::wireStatusFromStatus(Status::outOfRange("x")),
              WireStatus::OutOfRange);
    EXPECT_EQ(net::wireStatusFromRequest(RequestStatus::Expired,
                                         Status()),
              WireStatus::Expired);
    EXPECT_EQ(net::wireStatusFromRequest(RequestStatus::Cancelled,
                                         Status()),
              WireStatus::Cancelled);
    EXPECT_EQ(net::wireStatusFromRequest(RequestStatus::Error,
                                         Status::ioError("disk")),
              WireStatus::IoError);
    EXPECT_TRUE(
        net::statusFromWire(WireStatus::Ok, "").ok());
    EXPECT_FALSE(
        net::statusFromWire(WireStatus::Overloaded, "shed").ok());
}

// ---------------------------------------------------------------------
// MultiArchiveService
// ---------------------------------------------------------------------

TEST(NetMultiArchive, ByteIdenticalAcrossArchives)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 3);

    {
        MultiArchiveOptions options;
        options.globalCacheBudgetBytes = 8 << 20;
        options.ownedPoolThreads = 2;
        MultiArchiveService service(dir, options);

        for (const CorpusArchive &entry : corpus) {
            const StatusOr<ArchiveMeta> meta = service.open(entry.name);
            ASSERT_TRUE(meta.ok()) << meta.status().toString();
            EXPECT_EQ(meta->readCount, entry.expected.size());
            EXPECT_EQ(meta->chunkCount, entry.chunks);

            // Whole archive, then unaligned spans, then one chunk.
            MultiArchiveService::SyncOutcome all =
                service.readRangeSync(meta->id, 0,
                                      meta->readCount);
            ASSERT_EQ(all.admission, Admission::Admitted);
            ASSERT_TRUE(all.result.ok())
                << all.result.error.toString();
            expectSameReads(all.result.reads, entry.expected);

            MultiArchiveService::SyncOutcome span =
                service.readRangeSync(meta->id, 63, 130);
            ASSERT_EQ(span.admission, Admission::Admitted);
            ASSERT_TRUE(span.result.ok());
            expectSameReads(
                span.result.reads,
                std::vector<Read>(entry.expected.begin() + 63,
                                  entry.expected.begin() + 193));

            MultiArchiveService::SyncOutcome chunk =
                service.readChunkSync(meta->id, 1);
            ASSERT_EQ(chunk.admission, Admission::Admitted);
            ASSERT_TRUE(chunk.result.ok());
            expectSameReads(
                chunk.result.reads,
                std::vector<Read>(entry.expected.begin() + 64,
                                  entry.expected.begin() + 128));

            const StatusOr<ArchiveMeta> described =
                service.describe(meta->id);
            ASSERT_TRUE(described.ok());
            EXPECT_EQ(described->readCount, meta->readCount);
        }

        const MultiArchiveStats stats = service.stats();
        EXPECT_EQ(stats.opens, corpus.size());
        EXPECT_EQ(stats.reopens, 0u);
        EXPECT_EQ(stats.knownArchives, corpus.size());
        EXPECT_GT(stats.readsServed, 0u);
        EXPECT_GT(stats.cacheBytesReserved, 0u);

        // Out-of-range spans and chunks are rejected up front.
        Status reject;
        EXPECT_EQ(service.readRangeSync(0, 0,
                                        corpus[0].expected.size() + 1)
                      .admission,
                  Admission::BadRange);
        EXPECT_EQ(service.readChunkSync(0, corpus[0].chunks).admission,
                  Admission::BadRange);
        EXPECT_EQ(service
                      .readRange(99, 0, 1, RequestOptions(),
                                 [](ReadResult) { FAIL(); }, &reject)
                      ,
                  Admission::UnknownArchive);
        EXPECT_FALSE(reject.ok());
    }
    removeCorpus(dir, corpus);
}

TEST(NetMultiArchive, HostileNamesAndMissingFilesAreRecoverable)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 1);
    {
        MultiArchiveOptions options;
        options.ownedPoolThreads = 1;
        MultiArchiveService service(dir, options);

        EXPECT_FALSE(service.open("").ok());
        EXPECT_FALSE(service.open("../etc/passwd").ok());
        EXPECT_FALSE(service.open("a/../../b.sage").ok());
        EXPECT_FALSE(service.open("/abs/path.sage").ok());
        EXPECT_FALSE(service.open(std::string("x", 1) + '\0').ok());
        EXPECT_FALSE(service.open("missing.sage").ok());
        EXPECT_FALSE(service.describe(12).ok());
        EXPECT_FALSE(service.closeArchive(12).ok());

        // Failed opens leave no registry residue (a hostile OPEN
        // flood cannot grow memory), and the service still works.
        EXPECT_EQ(service.stats().knownArchives, 0u);
        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok()) << meta.status().toString();
        EXPECT_EQ(service.stats().knownArchives, 1u);
        EXPECT_TRUE(
            service.readRangeSync(meta->id, 0, 1).result.ok());
    }
    removeCorpus(dir, corpus);
}

/** Satellite: eviction past the LRU cap releases the partition's
 *  cache bytes and a later read transparently reopens. */
TEST(NetMultiArchive, EvictionPastCapReopensTransparently)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 3);
    {
        MultiArchiveOptions options;
        options.globalCacheBudgetBytes = 8 << 20;
        options.maxOpenArchives = 2;
        options.ownedPoolThreads = 2;
        MultiArchiveService service(dir, options);
        EXPECT_EQ(service.partitionBytes(), (8ull << 20) / 2);

        const StatusOr<ArchiveMeta> a = service.open(corpus[0].name);
        const StatusOr<ArchiveMeta> b = service.open(corpus[1].name);
        ASSERT_TRUE(a.ok() && b.ok());
        ASSERT_TRUE(service.readRangeSync(a->id, 0, 64)
                        .result.ok());
        ASSERT_TRUE(service.readRangeSync(b->id, 0, 64)
                        .result.ok());
        // Touch b so a is the LRU victim, then open c past the cap.
        // (The touch may decode another chunk of b, so snapshot the
        // warm byte count after it — between here and the eviction no
        // new decode runs.)
        ASSERT_TRUE(service.readRangeSync(b->id, 64, 1)
                        .result.ok());
        const uint64_t warm = service.stats().cacheBytesReserved;
        EXPECT_GT(warm, 0u);
        const StatusOr<ArchiveMeta> c = service.open(corpus[2].name);
        ASSERT_TRUE(c.ok()) << c.status().toString();

        MultiArchiveStats stats = service.stats();
        EXPECT_EQ(stats.evictions, 1u);
        EXPECT_EQ(stats.openArchives, 2u);
        EXPECT_EQ(stats.knownArchives, 3u);
        EXPECT_EQ(stats.opens, 3u);
        EXPECT_EQ(stats.reopens, 0u);
        // a's partition released its decoded bytes; c is still cold.
        EXPECT_LT(stats.cacheBytesReserved, warm);

        // Reading the evicted archive reopens it under the same id,
        // byte-identical, and evicts the new victim (b).
        MultiArchiveService::SyncOutcome again =
            service.readRangeSync(a->id, 0,
                                  corpus[0].expected.size());
        ASSERT_EQ(again.admission, Admission::Admitted);
        ASSERT_TRUE(again.result.ok())
            << again.result.error.toString();
        expectSameReads(again.result.reads, corpus[0].expected);

        stats = service.stats();
        EXPECT_EQ(stats.reopens, 1u);
        EXPECT_EQ(stats.evictions, 2u);
        EXPECT_EQ(stats.openArchives, 2u);

        // Same name maps to the same stable id.
        const StatusOr<ArchiveMeta> a2 = service.open(corpus[0].name);
        ASSERT_TRUE(a2.ok());
        EXPECT_EQ(a2->id, a->id);
    }
    removeCorpus(dir, corpus);
}

/** Satellite: the admission probe is a relaxed atomic read and sheds
 *  deterministically at the high-water mark. */
TEST(NetMultiArchive, AdmissionControlShedsAtHighWater)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 1);
    {
        ThreadPool pool(1);
        MultiArchiveOptions options;
        options.pool = &pool;
        options.admissionHighWater = 1;
        MultiArchiveService service(dir, options);

        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok()) << meta.status().toString();

        // Block the only worker so admitted requests stay queued.
        std::promise<void> release;
        std::shared_future<void> released =
            release.get_future().share();
        pool.submit([released] { released.wait(); });

        std::promise<ReadResult> first_done;
        ASSERT_EQ(service.readRange(
                      meta->id, 0, 64, RequestOptions(),
                      [&](ReadResult result) {
                          first_done.set_value(std::move(result));
                      }),
                  Admission::Admitted);
        EXPECT_GE(service.queueDepth(), 1u);

        // Queue depth >= high water: the next request is shed before
        // enqueue, its callback never runs.
        Status reject;
        ASSERT_EQ(service.readRange(meta->id, 0, 64,
                                    RequestOptions(),
                                    [](ReadResult) { FAIL(); },
                                    &reject),
                  Admission::Overloaded);
        EXPECT_EQ(reject.code(), StatusCode::Exhausted);

        release.set_value();
        const ReadResult result = first_done.get_future().get();
        ASSERT_TRUE(result.ok()) << result.error.toString();
        expectSameReads(result.reads,
                        std::vector<Read>(corpus[0].expected.begin(),
                                          corpus[0].expected.begin() +
                                              64));

        const MultiArchiveStats stats = service.stats();
        EXPECT_EQ(stats.admitted, 1u);
        EXPECT_EQ(stats.overloaded, 1u);
        EXPECT_EQ(stats.queueDepth, 0u);
    }
    removeCorpus(dir, corpus);
}

/** Satellite: server-side fault injection (sage_cli serve
 *  --fault-rate) — opens survive (the container parse is disarmed),
 *  reads surface recoverable Error results, the file is undamaged. */
TEST(NetMultiArchive, FaultInjectionErrorsAreRecoverable)
{
    const std::string dir = perTestScratchPath("corpus");
    const std::vector<CorpusArchive> corpus = makeCorpus(dir, 1);
    {
        MultiArchiveOptions options;
        options.ownedPoolThreads = 1;
        options.faultRate = 1.0;  // Every armed read faults.
        options.faultSeed = 7;
        options.decodeRetries = 1;
        MultiArchiveService service(dir, options);

        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok()) << meta.status().toString();

        MultiArchiveService::SyncOutcome outcome =
            service.readRangeSync(meta->id, 0, 64);
        ASSERT_EQ(outcome.admission, Admission::Admitted);
        EXPECT_EQ(outcome.result.status, RequestStatus::Error);
        EXPECT_FALSE(outcome.result.error.ok());
        EXPECT_TRUE(outcome.result.reads.empty());
        EXPECT_GE(service.stats().errored, 1u);
    }
    {
        // The same files read back clean without injection.
        MultiArchiveOptions options;
        options.ownedPoolThreads = 1;
        MultiArchiveService service(dir, options);
        const StatusOr<ArchiveMeta> meta = service.open(corpus[0].name);
        ASSERT_TRUE(meta.ok());
        MultiArchiveService::SyncOutcome outcome =
            service.readRangeSync(meta->id, 0,
                                  corpus[0].expected.size());
        ASSERT_TRUE(outcome.result.ok());
        expectSameReads(outcome.result.reads, corpus[0].expected);
    }
    removeCorpus(dir, corpus);
}

// ---------------------------------------------------------------------
// Server over loopback sockets
// ---------------------------------------------------------------------

class NetServerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = perTestScratchPath("corpus");
        corpus_ = makeCorpus(dir_, 3);
    }

    void
    TearDown() override
    {
        removeCorpus(dir_, corpus_);
    }

    std::string dir_;
    std::vector<CorpusArchive> corpus_;
};

TEST_F(NetServerTest, MultiConnectionByteIdentity)
{
    MultiArchiveOptions options;
    options.globalCacheBudgetBytes = 8 << 20;
    options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());
    ASSERT_NE(server.port(), 0);

    // One connection per archive, all walking concurrently in small
    // batches; every byte must match the sequential reader's truth.
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (size_t i = 0; i < corpus_.size(); i++) {
        threads.emplace_back([&, i] {
            StatusOr<std::unique_ptr<Client>> client =
                Client::connect("127.0.0.1", server.port());
            if (!client.ok()) {
                failures++;
                return;
            }
            const StatusOr<OpenReply> open =
                (*client)->open(corpus_[i].name);
            if (!open.ok() ||
                open->readCount != corpus_[i].expected.size()) {
                failures++;
                return;
            }
            std::vector<Read> got;
            for (uint64_t first = 0; first < open->readCount;) {
                const uint64_t batch =
                    std::min<uint64_t>(100, open->readCount - first);
                const StatusOr<net::ReadReply> reply =
                    (*client)->readRange(open->archive, first, batch);
                if (!reply.ok() || !reply->ok()) {
                    failures++;
                    return;
                }
                got.insert(got.end(), reply->reads.begin(),
                           reply->reads.end());
                first += batch;
            }
            expectSameReads(got, corpus_[i].expected);

            // Chunk-addressed read of chunk 1.
            const StatusOr<net::ReadReply> chunk =
                (*client)->readChunk(open->archive, 1);
            if (!chunk.ok() || !chunk->ok()) {
                failures++;
                return;
            }
            expectSameReads(
                chunk->reads,
                std::vector<Read>(corpus_[i].expected.begin() + 64,
                                  corpus_[i].expected.begin() + 128));
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(failures.load(), 0);

    // Server-wide STAT reflects the work.
    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    const StatusOr<WireServerStats> stats = (*client)->statServer();
    ASSERT_TRUE(stats.ok()) << stats.status().toString();
    EXPECT_EQ(stats->knownArchives, corpus_.size());
    EXPECT_GT(stats->readsServed, 0u);
    EXPECT_EQ(stats->overloaded, 0u);

    const net::ServerNetStats net_stats = server.netStats();
    EXPECT_EQ(net_stats.accepted, corpus_.size() + 1);
    EXPECT_EQ(net_stats.protocolErrors, 0u);
    EXPECT_GT(net_stats.repliesOut, 0u);

    server.stop();
    server.stop();  // Idempotent.
    EXPECT_FALSE(server.running());
}

TEST_F(NetServerTest, ErrorRepliesLeaveConnectionUsable)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, service_options);
    ServerOptions server_options;
    server_options.maxReadsPerRequest = 100;
    Server server(service, server_options);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.status().toString();

    // Unknown archive name: error reply, connection stays up.
    EXPECT_FALSE((*client)->open("missing.sage").ok());

    const StatusOr<OpenReply> open = (*client)->open(corpus_[0].name);
    ASSERT_TRUE(open.ok()) << open.status().toString();

    // Count above the server's per-request ceiling: BadRequest.
    StatusOr<net::ReadReply> reply =
        (*client)->readRange(open->archive, 0, 101);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, WireStatus::BadRequest);

    // Span past the end: OutOfRange, in-band.
    reply = (*client)->readRange(open->archive,
                                 corpus_[0].expected.size(), 1);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, WireStatus::OutOfRange);

    // Unknown archive id.
    reply = (*client)->readRange(42, 0, 1);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->status, WireStatus::UnknownArchive);

    // The connection survived every error and still serves data.
    reply = (*client)->readRange(open->archive, 0, 100);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok()) << reply->message;
    expectSameReads(reply->reads,
                    std::vector<Read>(corpus_[0].expected.begin(),
                                      corpus_[0].expected.begin() +
                                          100));

    // Explicit CLOSE drops the server's open; a later read reopens.
    EXPECT_TRUE((*client)->closeArchive(open->archive).ok());
    reply = (*client)->readRange(open->archive, 0, 1);
    ASSERT_TRUE(reply.ok());
    EXPECT_TRUE(reply->ok());
    const StatusOr<WireServerStats> stats = (*client)->statServer();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->reopens, 1u);
}

TEST_F(NetServerTest, OverloadProducesOverloadedRepliesNotDrops)
{
    ThreadPool pool(1);
    MultiArchiveOptions service_options;
    service_options.pool = &pool;
    service_options.admissionHighWater = 1;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> stuck =
        Client::connect("127.0.0.1", server.port());
    StatusOr<std::unique_ptr<Client>> shed =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(stuck.ok() && shed.ok());
    const StatusOr<OpenReply> open = (*stuck)->open(corpus_[0].name);
    ASSERT_TRUE(open.ok()) << open.status().toString();

    // Block the only worker, then park one admitted request in the
    // queue from a second thread (the blocking client waits for it).
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    pool.submit([released] { released.wait(); });

    std::thread waiter([&] {
        const StatusOr<net::ReadReply> reply =
            (*stuck)->readRange(open->archive, 0, 64);
        EXPECT_TRUE(reply.ok() && reply->ok());
    });
    const auto give_up = std::chrono::steady_clock::now() +
        std::chrono::seconds(10);
    while (service.queueDepth() < 1 &&
           std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GE(service.queueDepth(), 1u);

    // The second connection's read is shed with an explicit
    // Overloaded reply — not a dropped connection, not a stall.
    const StatusOr<net::ReadReply> reply =
        (*shed)->readRange(open->archive, 0, 64);
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, WireStatus::Overloaded);

    release.set_value();
    waiter.join();

    // Both connections remain usable after the shed.
    const StatusOr<WireServerStats> stats = (*shed)->statServer();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->overloaded, 1u);
    EXPECT_EQ(stats->admitted, 1u);
}

TEST_F(NetServerTest, DeadlineExpiresInQueue)
{
    ThreadPool pool(1);
    MultiArchiveOptions service_options;
    service_options.pool = &pool;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    const StatusOr<OpenReply> open = (*client)->open(corpus_[0].name);
    ASSERT_TRUE(open.ok());

    // Hold the worker past the request's 1 ms deadline; the dequeue
    // check abandons it with an Expired reply.
    std::promise<void> release;
    std::shared_future<void> released = release.get_future().share();
    pool.submit([released] { released.wait(); });
    std::thread unblock([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        release.set_value();
    });
    const StatusOr<net::ReadReply> reply =
        (*client)->readRange(open->archive, 0, 64,
                             RequestPriority::Normal,
                             /*deadline_ms=*/1);
    unblock.join();
    ASSERT_TRUE(reply.ok()) << reply.status().toString();
    EXPECT_EQ(reply->status, WireStatus::Expired);

    // The expired request cost nothing and the connection still works.
    const StatusOr<net::ReadReply> again =
        (*client)->readRange(open->archive, 0, 64);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(again->ok());
}

/** Satellite: a corrupt archive errors its own connection's replies
 *  and leaves every other connection's data path untouched. */
TEST_F(NetServerTest, CorruptArchiveIsolatedToItsConnection)
{
    // Truncate archive 1's file mid-container before any open.
    const std::string victim = dir_ + "/" + corpus_[1].name;
    struct stat st;
    ASSERT_EQ(::stat(victim.c_str(), &st), 0);
    ASSERT_EQ(::truncate(victim.c_str(), st.st_size / 2), 0);

    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 2;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    StatusOr<std::unique_ptr<Client>> healthy =
        Client::connect("127.0.0.1", server.port());
    StatusOr<std::unique_ptr<Client>> broken =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(healthy.ok() && broken.ok());

    // The corrupt archive fails its OPEN with a decode-side status;
    // the connection that asked survives.
    const StatusOr<OpenReply> bad = (*broken)->open(corpus_[1].name);
    ASSERT_FALSE(bad.ok());
    EXPECT_TRUE((*broken)->statServer().ok());

    // The other connection reads its archive byte-identically.
    const StatusOr<OpenReply> good = (*healthy)->open(corpus_[0].name);
    ASSERT_TRUE(good.ok()) << good.status().toString();
    const StatusOr<net::ReadReply> reply =
        (*healthy)->readRange(good->archive, 0, good->readCount);
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(reply->ok()) << reply->message;
    expectSameReads(reply->reads, corpus_[0].expected);
}

TEST_F(NetServerTest, HostileLengthPrefixGetsProtocolErrorThenClose)
{
    MultiArchiveOptions service_options;
    service_options.ownedPoolThreads = 1;
    MultiArchiveService service(dir_, service_options);
    Server server(service);
    ASSERT_TRUE(server.start().ok());

    // Raw socket: claim a 4 GiB frame. The server must answer with a
    // ProtocolError reply and close — never allocate the claim.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof addr),
              0);
    const uint8_t hostile[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(fd, hostile, sizeof hostile, 0),
              static_cast<ssize_t>(sizeof hostile));

    // Read until EOF; the bytes before it must parse as a
    // ProtocolError reply.
    std::vector<uint8_t> got;
    uint8_t buf[512];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0)
            break;
        got.insert(got.end(), buf, buf + n);
    }
    ::close(fd);
    ASSERT_GT(got.size(), net::kLenBytes + net::kReplyHeaderBytes);
    const StatusOr<ReplyHeader> header = net::parseReplyHeader(
        got.data() + net::kLenBytes, got.size() - net::kLenBytes);
    ASSERT_TRUE(header.ok()) << header.status().toString();
    EXPECT_EQ(header->status, WireStatus::ProtocolError);
    EXPECT_GE(server.netStats().protocolErrors, 1u);

    // The server shrugged it off: a well-formed client still works.
    StatusOr<std::unique_ptr<Client>> client =
        Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE((*client)->statServer().ok());
}

} // namespace
} // namespace sage
